// moss::cluster test suite: consistent-hash ring determinism and failover
// order, MOSSSEG1 segment round-trips under a corruption matrix (truncation
// and bit-flips at every region -> typed skip, never a crash), session
// fingerprint stability across reloads, router failover/breaker behavior
// against flaky backends, a seeded in-process chaos soak, and supervisor
// respawn semantics with real child processes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "cluster/segment.hpp"
#include "cluster/supervisor.hpp"
#include "cell/library.hpp"
#include "core_util/error.hpp"
#include "core_util/rng.hpp"
#include "data/dataset.hpp"
#include "serve/cache.hpp"
#include "serve/registry.hpp"

namespace moss {
namespace {

using cluster::HashRing;
using cluster::LoadReport;
using cluster::Router;
using cluster::RouterConfig;
using cluster::SaveReport;
using cluster::SegmentEntry;
using serve::EmbeddingCache;
using tensor::Tensor;

Tensor filled(std::size_t cols, float base) {
  Tensor t = Tensor::zeros(1, cols);
  for (std::size_t i = 0; i < cols; ++i) {
    t.data()[i] = base + 0.25f * static_cast<float>(i);
  }
  return t;
}

/// Unique scratch directory, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/moss_cluster_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRing, DeterministicAcrossInstances) {
  HashRing a(64, 7), b(64, 7);
  for (std::uint32_t s = 0; s < 5; ++s) {
    a.add_shard(s);
    b.add_shard(s);
  }
  // A ring rebuilt in another process (same config) must agree on every
  // placement, or a respawned router would scatter warm keys.
  for (std::uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(a.owner(key * 0x9E3779B97F4A7C15ull),
              b.owner(key * 0x9E3779B97F4A7C15ull));
  }
}

TEST(HashRing, EveryShardOwnsASliceAndReplicasAreDistinct) {
  HashRing ring(64, 0);
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  std::set<std::uint32_t> seen;
  for (std::uint64_t key = 0; key < 4000; ++key) {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull + 1;
    const auto owners = ring.owners(h, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.owner(h));
    std::set<std::uint32_t> uniq(owners.begin(), owners.end());
    EXPECT_EQ(uniq.size(), owners.size()) << "replicas must be distinct";
    seen.insert(owners[0]);
  }
  EXPECT_EQ(seen.size(), 4u) << "with 64 vnodes every shard owns keys";
}

TEST(HashRing, RemovingAShardOnlyMovesItsOwnKeys) {
  HashRing before(64, 3), after(64, 3);
  for (std::uint32_t s = 0; s < 4; ++s) {
    before.add_shard(s);
    after.add_shard(s);
  }
  after.remove_shard(2);
  std::size_t moved = 0, total = 0;
  for (std::uint64_t key = 0; key < 4000; ++key) {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull + 5;
    ++total;
    if (before.owner(h) == 2) {
      EXPECT_NE(after.owner(h), 2u);
      ++moved;
    } else {
      EXPECT_EQ(after.owner(h), before.owner(h))
          << "keys not owned by the removed shard must not move";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, total / 2) << "~1/4 of keys should move, not half";
}

TEST(HashRing, EmptyRingFailsTyped) {
  HashRing ring;
  try {
    ring.owner(42);
    FAIL() << "expected ContextError";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "empty_ring");
  }
  EXPECT_TRUE(ring.owners(42, 2).empty());
}

// ---------------------------------------------------------------------------
// MOSSSEG1 segments

TEST(Segment, BlobRoundTripPreservesEntriesBitExact) {
  std::vector<SegmentEntry> in;
  in.push_back({11, filled(16, 1.0f)});
  in.push_back({22, filled(8, -3.5f)});
  const std::string blob = cluster::serialize_segment(0xFEEDBEEF, in);

  ErrorContext ctx;
  ctx.add("file", "<memory>");
  const auto out = cluster::deserialize_segment(blob, 0xFEEDBEEF, ctx);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 11u);
  EXPECT_EQ(out[0].value.rows(), 1u);
  EXPECT_EQ(out[0].value.cols(), 16u);
  EXPECT_EQ(out[0].value.data(), in[0].value.data());
  EXPECT_EQ(out[1].key, 22u);
  EXPECT_EQ(out[1].value.data(), in[1].value.data());
}

TEST(Segment, FingerprintMismatchFailsTyped) {
  const std::string blob =
      cluster::serialize_segment(0xAAAA, {{1, filled(4, 1.0f)}});
  ErrorContext ctx;
  ctx.add("file", "<memory>");
  EXPECT_NO_THROW(cluster::deserialize_segment(blob, 0, ctx))
      << "expect_fingerprint=0 accepts any model";
  try {
    cluster::deserialize_segment(blob, 0xBBBB, ctx);
    FAIL() << "expected ContextError";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "model_mismatch");
    EXPECT_EQ(e.context_value("file"), "<memory>");
  }
}

TEST(Segment, SaveLoadRoundTripRestoresCacheWarm) {
  TempDir dir;
  EmbeddingCache cache(1 << 20, 2);
  for (std::uint64_t k = 1; k <= 20; ++k) {
    cache.put(k, filled(16, static_cast<float>(k)));
  }
  const SaveReport sr = cluster::save_cache(dir.path, cache, 0x1234);
  EXPECT_EQ(sr.entries, 20u);
  EXPECT_GE(sr.segments, 1u);

  EmbeddingCache fresh(1 << 20, 2);
  const LoadReport lr = cluster::load_cache(dir.path, fresh, 0x1234);
  EXPECT_EQ(lr.entries, 20u);
  EXPECT_EQ(lr.segments_rejected, 0u) << lr.first_error;
  EXPECT_EQ(lr.segments_loaded, sr.segments);
  for (std::uint64_t k = 1; k <= 20; ++k) {
    const auto got = fresh.get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(got->data(), filled(16, static_cast<float>(k)).data());
  }
}

TEST(Segment, MmapLoadBitIdenticalToOneReadLoad) {
  TempDir dir;
  EmbeddingCache cache(1 << 20, 2);
  for (std::uint64_t k = 1; k <= 20; ++k) {
    cache.put(k, filled(16, static_cast<float>(k) * 0.5f));
  }
  const SaveReport sr = cluster::save_cache(dir.path, cache, 0x5678);

  EmbeddingCache via_read(1 << 20, 2);
  const LoadReport lr_read =
      cluster::load_cache(dir.path, via_read, 0x5678, /*use_mmap=*/false);
  EmbeddingCache via_mmap(1 << 20, 2);
  const LoadReport lr_mmap =
      cluster::load_cache(dir.path, via_mmap, 0x5678, /*use_mmap=*/true);

  EXPECT_EQ(lr_mmap.entries, lr_read.entries);
  EXPECT_EQ(lr_mmap.segments_loaded, sr.segments);
  EXPECT_EQ(lr_mmap.segments_rejected, 0u) << lr_mmap.first_error;
  for (std::uint64_t k = 1; k <= 20; ++k) {
    const auto a = via_read.get(k);
    const auto b = via_mmap.get(k);
    ASSERT_TRUE(a.has_value()) << "key " << k;
    ASSERT_TRUE(b.has_value()) << "key " << k;
    EXPECT_EQ(a->data(), b->data()) << "key " << k;
  }
}

TEST(Segment, SmallMaxSegmentBytesSplitsAndGcReclaimsOldGenerations) {
  TempDir dir;
  EmbeddingCache cache(1 << 20, 1);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    cache.put(k, filled(64, static_cast<float>(k)));
  }
  // 64 floats = 256B payload/entry; 600B segments force several files.
  const SaveReport sr1 = cluster::save_cache(dir.path, cache, 0x1, 600);
  EXPECT_GE(sr1.segments, 4u);

  // Second generation with different content: old segments get GC'd.
  cache.clear();
  cache.put(99, filled(64, 0.5f));
  const SaveReport sr2 = cluster::save_cache(dir.path, cache, 0x1, 600);
  EXPECT_EQ(sr2.entries, 1u);
  EXPECT_GT(sr2.removed, 0u) << "previous generation should be collected";

  EmbeddingCache fresh(1 << 20, 1);
  const LoadReport lr = cluster::load_cache(dir.path, fresh, 0x1);
  EXPECT_EQ(lr.entries, 1u);
  EXPECT_TRUE(fresh.get(99).has_value());
  EXPECT_FALSE(fresh.get(1).has_value());
}

TEST(Segment, LoadPreservesLruRecencyOrder) {
  TempDir dir;
  // One shard, budget for exactly three 16-float entries after reload.
  const std::size_t entry = 16 * 4 + EmbeddingCache::kEntryOverhead;
  EmbeddingCache cache(3 * entry, 1);
  cache.put(1, filled(16, 1.0f));
  cache.put(2, filled(16, 2.0f));
  cache.put(3, filled(16, 3.0f));
  ASSERT_TRUE(cache.get(1).has_value());  // recency now: 1,3,2 (hot->cold)
  cluster::save_cache(dir.path, cache, 0x7);

  EmbeddingCache fresh(3 * entry, 1);
  cluster::load_cache(dir.path, fresh, 0x7);
  // Insert one more: the LRU victim must be 2 (coldest), as before the
  // round-trip — export/import preserved relative recency.
  fresh.put(4, filled(16, 4.0f));
  EXPECT_FALSE(fresh.get(2).has_value());
  EXPECT_TRUE(fresh.get(1).has_value());
  EXPECT_TRUE(fresh.get(3).has_value());
  EXPECT_TRUE(fresh.get(4).has_value());
}

TEST(Segment, SaveCreatesNestedCacheDirectories) {
  // Launcher layout is <cache_root>/shardN with no pre-created root; the
  // first flush must mkdir -p its way down.
  TempDir dir;
  EmbeddingCache cache(1 << 20, 1);
  cache.put(1, filled(8, 1.0f));
  const std::string nested = dir.path + "/cache/shard0";
  EXPECT_EQ(cluster::save_cache(nested, cache, 0x2).entries, 1u);
  EmbeddingCache fresh(1 << 20, 1);
  EXPECT_EQ(cluster::load_cache(nested, fresh, 0x2).entries, 1u);
}

TEST(Segment, EmptyDirectoryIsACleanColdStart) {
  TempDir dir;
  EmbeddingCache cache(1 << 20);
  const LoadReport lr = cluster::load_cache(dir.path + "/nonexistent", cache,
                                            0x1);
  EXPECT_EQ(lr.entries, 0u);
  EXPECT_EQ(lr.segments_loaded, 0u);
  EXPECT_EQ(lr.segments_rejected, 0u);
  EXPECT_TRUE(lr.first_error.empty()) << lr.first_error;
}

// The corruption matrix: every region of a segment file — magic, version,
// size field, CRC, payload head/middle/tail — flipped or truncated. Load
// must reject the damaged segment typed (counted, first_error set), keep
// entries from healthy segments, and never crash or mis-load.
TEST(Segment, CorruptionMatrixTruncateAndFlipNeverCrashes) {
  TempDir dir;
  EmbeddingCache cache(1 << 20, 1);
  for (std::uint64_t k = 1; k <= 6; ++k) {
    cache.put(k, filled(32, static_cast<float>(k)));
  }
  // Two segments: corrupt one, the other must survive every scenario.
  const SaveReport sr = cluster::save_cache(dir.path, cache, 0x77, 400);
  ASSERT_GE(sr.segments, 2u);

  // Pick a victim segment: filenames are recorded verbatim inside the
  // manifest payload, so scanning its bytes for "seg_*.mossseg" is enough.
  std::string victim;
  const std::string manifest = slurp(dir.path + "/MANIFEST.mossmft");
  const std::size_t pos = manifest.find("seg_");
  ASSERT_NE(pos, std::string::npos);
  victim = manifest.substr(pos, manifest.find(".mossseg", pos) + 8 - pos);
  const std::string victim_path = dir.path + "/" + victim;
  const std::string pristine = slurp(victim_path);
  ASSERT_GT(pristine.size(), cluster::kSegmentHeaderBytes);

  struct Scenario {
    const char* name;
    std::size_t truncate_to;  // SIZE_MAX = no truncation
    std::size_t flip_at;      // SIZE_MAX = no flip
  };
  const std::size_t NOPE = static_cast<std::size_t>(-1);
  const std::vector<Scenario> scenarios = {
      {"empty file", 0, NOPE},
      {"header torn", cluster::kSegmentHeaderBytes / 2, NOPE},
      {"payload torn", pristine.size() - 7, NOPE},
      {"one byte short", pristine.size() - 1, NOPE},
      {"magic flipped", NOPE, 0},
      {"version flipped", NOPE, 9},
      {"size flipped", NOPE, 17},
      {"crc flipped", NOPE, 25},
      {"payload head flipped", NOPE, cluster::kSegmentHeaderBytes},
      {"payload tail flipped", NOPE, pristine.size() - 1},
  };

  for (const Scenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    std::string bytes = pristine;
    if (sc.truncate_to != NOPE) bytes.resize(sc.truncate_to);
    if (sc.flip_at != NOPE) bytes[sc.flip_at] ^= 0x40;
    spit(victim_path, bytes);

    EmbeddingCache fresh(1 << 20, 1);
    LoadReport lr;
    ASSERT_NO_THROW(lr = cluster::load_cache(dir.path, fresh, 0x77));
    EXPECT_EQ(lr.segments_rejected, 1u);
    EXPECT_FALSE(lr.first_error.empty());
    EXPECT_NE(lr.first_error.find(victim), std::string::npos)
        << "error must name the damaged file: " << lr.first_error;
    EXPECT_EQ(lr.segments_loaded, sr.segments - 1)
        << "healthy segments must still load";
    EXPECT_GT(lr.entries, 0u);
    EXPECT_LT(lr.entries, 6u);
  }

  // Restore the pristine bytes: everything loads again.
  spit(victim_path, pristine);
  EmbeddingCache fresh(1 << 20, 1);
  const LoadReport lr = cluster::load_cache(dir.path, fresh, 0x77);
  EXPECT_EQ(lr.segments_rejected, 0u) << lr.first_error;
  EXPECT_EQ(lr.entries, 6u);
}

TEST(Segment, DamagedManifestFallsBackToDirectoryScan) {
  TempDir dir;
  EmbeddingCache cache(1 << 20, 1);
  cache.put(5, filled(16, 5.0f));
  cluster::save_cache(dir.path, cache, 0x9);

  spit(dir.path + "/MANIFEST.mossmft", "not a manifest at all");
  EmbeddingCache fresh(1 << 20, 1);
  const LoadReport lr = cluster::load_cache(dir.path, fresh, 0x9);
  EXPECT_EQ(lr.entries, 1u) << "segments still load via directory scan";
  EXPECT_FALSE(lr.first_error.empty()) << "manifest damage is reported";
  EXPECT_TRUE(fresh.get(5).has_value());
}

// ---------------------------------------------------------------------------
// Session fingerprint (restart-stable cache keys)

TEST(Fingerprint, StableAcrossReloadDistinctAcrossModels) {
  core::WorkflowConfig cfg;
  cfg.model.hidden = 8;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 100;
  cfg.encoder = {512, 8, 3};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 500;
  const auto lc = data::label_circuit({"alu", 1, 31, "fp_alu"},
                                      cell::standard_library(), cfg.dataset);
  const std::vector<std::string> corpus{lc.module_text};

  // Two boots of the same config+corpus — what a supervisor respawn does —
  // must produce the same fingerprint (the persisted cache keys hit) but
  // different process uids (registry bookkeeping stays per-boot).
  const auto s1 = serve::MossSession::load(cfg, corpus, "");
  const auto s2 = serve::MossSession::load(cfg, corpus, "");
  EXPECT_NE(s1->fingerprint(), 0u);
  EXPECT_EQ(s1->fingerprint(), s2->fingerprint());
  EXPECT_NE(s1->uid(), s2->uid());

  // A different model (hidden size) must never share cache keys.
  core::WorkflowConfig other = cfg;
  other.model.hidden = 12;
  const auto s3 = serve::MossSession::load(other, corpus, "");
  EXPECT_NE(s3->fingerprint(), s1->fingerprint());
}

// ---------------------------------------------------------------------------
// Router failover against flaky backends

/// Scriptable backend: echoes OK lines while up; throws the transient
/// transport error a dead moss_serve socket produces while down.
class FakeBackend : public cluster::Backend {
 public:
  explicit FakeBackend(std::string name) : name_(std::move(name)) {}

  std::string request(const std::string& line) override {
    ++requests_;
    if (down_) {
      ErrorContext ctx;
      ctx.add("socket", name_)
          .add("reason", "connect_failed")
          .transient()
          .fail("connection refused");
    }
    if (line == "HEALTH") {
      return "OK HEALTH state=ok shard=" + name_;
    }
    if (line == "FLUSH") {
      return "OK FLUSH segments=1 entries=3";
    }
    return "OK " + name_ + " " + line;
  }
  const std::string& name() const override { return name_; }

  void set_down(bool down) { down_ = down; }
  std::uint64_t requests() const { return requests_; }

 private:
  std::string name_;
  std::atomic<bool> down_{false};
  std::atomic<std::uint64_t> requests_{0};
};

struct RouterWorld {
  std::vector<FakeBackend*> fakes;
  std::unique_ptr<Router> router;

  explicit RouterWorld(std::size_t n, RouterConfig cfg = {}) {
    std::vector<std::unique_ptr<cluster::Backend>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      auto b = std::make_unique<FakeBackend>("s" + std::to_string(i));
      fakes.push_back(b.get());
      backends.push_back(std::move(b));
    }
    router = std::make_unique<Router>(std::move(backends), cfg);
  }
};

TEST(Router, RoutesSameDesignToSameShardAlways) {
  RouterWorld w(3);
  const auto shard_of = [](const std::string& resp) {
    return resp.substr(3, resp.find(' ', 3) - 3);  // "OK <shard> ..."
  };
  const std::string owner = shard_of(w.router->route("ATP alu:2"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(shard_of(w.router->route("ATP alu:2")), owner)
        << "affinity: one design, one shard";
  }
  // Whitespace variants of the design route identically (canonicalized).
  EXPECT_EQ(shard_of(w.router->route("ATP   alu:2  ")), owner);
}

TEST(Router, FailsOverToReplicaWhenOwnerDies) {
  RouterConfig cfg;
  cfg.replicas = 1;
  cfg.retry.max_attempts = 1;  // transport failover, not in-place retry
  RouterWorld w(3, cfg);

  const std::string healthy = w.router->route("EMBED crc:2");
  ASSERT_EQ(healthy.rfind("OK s", 0), 0u) << healthy;
  const std::string owner = healthy.substr(3, healthy.find(' ', 3) - 3);

  for (FakeBackend* f : w.fakes) {
    if (f->name() == owner) f->set_down(true);
  }
  const std::string failover = w.router->route("EMBED crc:2");
  ASSERT_EQ(failover.rfind("OK s", 0), 0u)
      << "replica must answer: " << failover;
  EXPECT_NE(failover.substr(3, failover.find(' ', 3) - 3), owner);
  EXPECT_GE(w.router->stats().failovers, 1u);
}

TEST(Router, AllOwnersDownYieldsTypedShardDownNeverThrows) {
  RouterConfig cfg;
  cfg.replicas = 0;  // no replicas: owner down = typed error
  cfg.retry.max_attempts = 1;
  RouterWorld w(2, cfg);
  for (FakeBackend* f : w.fakes) f->set_down(true);

  for (int i = 0; i < 8; ++i) {
    std::string resp;
    ASSERT_NO_THROW(resp = w.router->route("ATP alu:2"));
    EXPECT_EQ(resp.rfind("ERR shard_down shard=", 0), 0u) << resp;
  }
  EXPECT_GE(w.router->stats().shard_down_errors, 8u);
  EXPECT_EQ(w.router->health(), serve::HealthState::kDown);
}

TEST(Router, BreakerOpensOnDeadShardAndRecoversAfterRespawn) {
  RouterConfig cfg;
  cfg.replicas = 0;
  cfg.retry.max_attempts = 1;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cooldown_ms = 30;
  RouterWorld w(1, cfg);
  w.fakes[0]->set_down(true);

  for (int i = 0; i < 5; ++i) w.router->route("ATP alu:2");
  EXPECT_EQ(w.router->breaker_state(0), serve::BreakerState::kOpen);
  const std::uint64_t reqs_at_open = w.fakes[0]->requests();
  // While open, requests are refused without touching the dead backend.
  w.router->route("ATP alu:2");
  EXPECT_EQ(w.fakes[0]->requests(), reqs_at_open)
      << "open breaker must not pay the connect timeout";

  // "Respawn" the shard; after the cooldown a half-open probe succeeds and
  // traffic resumes.
  w.fakes[0]->set_down(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const std::string resp = w.router->route("ATP alu:2");
  EXPECT_EQ(resp.rfind("OK s0", 0), 0u) << resp;
  EXPECT_EQ(w.router->breaker_state(0), serve::BreakerState::kClosed);
  EXPECT_EQ(w.router->health(), serve::HealthState::kOk);
}

TEST(Router, OwnerLookupMatchesRoutingAndFlushBroadcasts) {
  RouterConfig cfg;
  cfg.retry.max_attempts = 1;
  RouterWorld w(3, cfg);

  // OWNER answers from the ring without generating shard traffic, and
  // must name the shard ATP traffic actually lands on.
  const std::uint64_t before = w.fakes[0]->requests() +
                               w.fakes[1]->requests() +
                               w.fakes[2]->requests();
  const std::string owner_resp = w.router->route("OWNER alu:2");
  ASSERT_EQ(owner_resp.rfind("OK OWNER shard=", 0), 0u) << owner_resp;
  EXPECT_EQ(w.fakes[0]->requests() + w.fakes[1]->requests() +
                w.fakes[2]->requests(),
            before);
  const std::string owner = owner_resp.substr(15);
  const std::string served = w.router->route("ATP alu:2");
  EXPECT_EQ(served.substr(3, served.find(' ', 3) - 3), owner) << served;

  EXPECT_EQ(w.router->route("OWNER").rfind("ERR bad_request", 0), 0u);

  // FLUSH reaches every shard; a dead one is reported, not fatal.
  w.fakes[2]->set_down(true);
  const std::string flush = w.router->route("FLUSH");
  EXPECT_EQ(flush.rfind("OK FLUSH flushed=2/3", 0), 0u) << flush;
  EXPECT_NE(flush.find("s0=[segments=1 entries=3]"), std::string::npos)
      << flush;
  EXPECT_NE(flush.find("s2=[unreachable]"), std::string::npos) << flush;
}

TEST(Router, HealthRollsUpAcrossFleet) {
  RouterConfig cfg;
  cfg.retry.max_attempts = 1;
  RouterWorld w(3, cfg);
  EXPECT_EQ(w.router->health(), serve::HealthState::kOk);

  const std::string all_up = w.router->route("HEALTH");
  EXPECT_EQ(all_up.rfind("OK HEALTH state=ok shards=3 up=3 down=0", 0), 0u)
      << all_up;

  w.fakes[1]->set_down(true);
  const std::string one_down = w.router->route("HEALTH");
  EXPECT_EQ(one_down.rfind("OK HEALTH state=degraded shards=3 up=2 down=1",
                           0),
            0u)
      << one_down;
  EXPECT_NE(one_down.find("s1=unreachable"), std::string::npos) << one_down;
  EXPECT_EQ(w.router->health(), serve::HealthState::kDegraded);
}

// Seeded in-process chaos soak: random kills and revivals while traffic
// flows. Invariants: the router never throws, every response is "OK ..."
// or a typed "ERR <code> ...", and once the fleet is revived health
// returns to ok.
TEST(Router, ChaosSoakOnlyTypedResponsesAndHealthRecovers) {
  RouterConfig cfg;
  cfg.replicas = 1;
  cfg.retry.max_attempts = 1;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown_ms = 10;
  RouterWorld w(3, cfg);
  Rng rng(20260808);

  const std::vector<std::string> designs = {"alu:2", "crc:2", "fifo:2",
                                            "arbiter:2"};
  for (int step = 0; step < 400; ++step) {
    if (step % 20 == 5) {
      w.fakes[rng.index(w.fakes.size())]->set_down(true);
    }
    if (step % 20 == 15) {
      w.fakes[rng.index(w.fakes.size())]->set_down(false);
    }
    const std::string& d = designs[rng.index(designs.size())];
    std::string resp;
    ASSERT_NO_THROW(resp = w.router->route("ATP " + d));
    const bool ok = resp.rfind("OK ", 0) == 0;
    const bool typed_err = resp.rfind("ERR ", 0) == 0 &&
                           resp.find(' ', 4) != std::string::npos;
    EXPECT_TRUE(ok || typed_err) << "untyped response: " << resp;
  }

  for (FakeBackend* f : w.fakes) f->set_down(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  // HEALTH exchanges with every slot, so each pass hands half-open
  // breakers a successful probe; a few passes close the whole fleet.
  for (int i = 0; i < 4; ++i) {
    w.router->route("HEALTH");
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_EQ(w.router->health(), serve::HealthState::kOk);
}

// ---------------------------------------------------------------------------
// Supervisor (real child processes)

TEST(Supervisor, CleanExitIsHonoredNotRespawned) {
  cluster::Supervisor sup({.max_restarts = 3,
                           .backoff_base_ms = 10,
                           .backoff_cap_ms = 50,
                           .shutdown_grace_ms = 500});
  sup.add_shard({"clean", {"/bin/sh", "-c", "exit 0"}});
  sup.start();
  for (int i = 0; i < 100; ++i) {
    if (sup.status()[0].state == cluster::ShardState::kExited) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto st = sup.status()[0];
  EXPECT_EQ(st.state, cluster::ShardState::kExited);
  EXPECT_EQ(st.restarts, 0);
  sup.shutdown();
}

TEST(Supervisor, DirtyExitRespawnsUntilGiveUp) {
  cluster::Supervisor sup({.max_restarts = 2,
                           .backoff_base_ms = 5,
                           .backoff_cap_ms = 20,
                           .shutdown_grace_ms = 500});
  sup.add_shard({"crashy", {"/bin/sh", "-c", "exit 3"}});
  sup.start();
  for (int i = 0; i < 200; ++i) {
    if (sup.status()[0].state == cluster::ShardState::kGaveUp) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto st = sup.status()[0];
  EXPECT_EQ(st.state, cluster::ShardState::kGaveUp);
  EXPECT_EQ(st.restarts, 2) << "respawned max_restarts times, then gave up";
  sup.shutdown();
}

TEST(Supervisor, SigkilledShardIsRespawned) {
  cluster::Supervisor sup({.max_restarts = 5,
                           .backoff_base_ms = 5,
                           .backoff_cap_ms = 20,
                           .shutdown_grace_ms = 500});
  sup.add_shard({"victim", {"/bin/sh", "-c", "sleep 30"}});
  sup.start();
  const pid_t first = sup.pid_of(0);
  ASSERT_GT(first, 0);

  ASSERT_EQ(::kill(first, SIGKILL), 0);
  pid_t second = -1;
  for (int i = 0; i < 200; ++i) {
    second = sup.pid_of(0);
    if (second > 0 && second != first) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(second, 0) << "shard must come back";
  EXPECT_NE(second, first);
  EXPECT_GE(sup.status()[0].restarts, 1);
  sup.shutdown();
  EXPECT_EQ(sup.running_count(), 0u);
}

}  // namespace
}  // namespace moss
