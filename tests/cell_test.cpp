#include <gtest/gtest.h>

#include "cell/library.hpp"
#include "core_util/check.hpp"

namespace moss::cell {
namespace {

const CellLibrary& lib() { return standard_library(); }

TEST(CellLibrary, HasCoreCells) {
  for (const char* name :
       {"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
        "AOI21", "OAI21", "AOI22", "OAI22", "MUX2", "MAJ3", "XOR3", "DFF",
        "DFFR", "DFFE", "DFFRE", "TIE0", "TIE1"}) {
    EXPECT_TRUE(lib().contains(name)) << name;
  }
  EXPECT_GE(lib().size(), 30u);
}

TEST(CellLibrary, DuplicateNameRejected) {
  CellLibrary l;
  CellType t;
  t.name = "X";
  l.add(t);
  CellType t2;
  t2.name = "X";
  EXPECT_THROW(l.add(t2), Error);
}

TEST(CellLibrary, UnknownLookup) {
  EXPECT_EQ(lib().find("NO_SUCH_CELL"), kInvalidCellType);
  EXPECT_THROW(lib().by_name("NO_SUCH_CELL"), Error);
}

TEST(CellLibrary, PinMetadataConsistent) {
  for (const CellType& t : lib().types()) {
    EXPECT_EQ(t.pin_names.size(), static_cast<std::size_t>(t.num_inputs));
    EXPECT_EQ(t.intrinsic_delay.size(), static_cast<std::size_t>(t.num_inputs));
    EXPECT_EQ(t.pin_cap.size(), static_cast<std::size_t>(t.num_inputs));
    EXPECT_GT(t.drive_res, 0.0) << t.name;
    EXPECT_FALSE(t.description.empty()) << t.name;
    EXPECT_GT(t.area, 0.0) << t.name;
  }
}

TEST(CellLibrary, FlopAndCombPartition) {
  const auto flops = lib().flop_types();
  const auto combs = lib().comb_types();
  EXPECT_EQ(flops.size(), 4u);
  // flops + combs + 2 tie cells == library size
  EXPECT_EQ(flops.size() + combs.size() + 2, lib().size());
}

TEST(TruthTable, MakeTruthTableIdentity) {
  const auto tt = make_truth_table(2, [](std::uint32_t v) { return v == 3; });
  EXPECT_EQ(tt, 0b1000u);
}

struct GateCase {
  const char* name;
  int inputs;
  std::uint64_t expected;  // packed truth table
};

class GateFunction : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateFunction, MatchesExpectedTable) {
  const auto& p = GetParam();
  const CellType& t = lib().by_name(p.name);
  ASSERT_EQ(t.num_inputs, p.inputs);
  for (std::uint32_t row = 0; row < (1u << p.inputs); ++row) {
    EXPECT_EQ(t.eval(row), ((p.expected >> row) & 1u) != 0)
        << p.name << " row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateFunction,
    ::testing::Values(
        GateCase{"INV", 1, 0b01},
        GateCase{"BUF", 1, 0b10},
        GateCase{"NAND2", 2, 0b0111},
        GateCase{"NOR2", 2, 0b0001},
        GateCase{"AND2", 2, 0b1000},
        GateCase{"OR2", 2, 0b1110},
        GateCase{"XOR2", 2, 0b0110},
        GateCase{"XNOR2", 2, 0b1001},
        GateCase{"AND3", 3, 0x80},
        GateCase{"OR3", 3, 0xFE},
        GateCase{"NAND3", 3, 0x7F},
        GateCase{"NOR3", 3, 0x01},
        GateCase{"AND4", 4, 0x8000},
        GateCase{"NAND4", 4, 0x7FFF},
        // MAJ3: high when >= 2 of 3 inputs high: rows 3,5,6,7
        GateCase{"MAJ3", 3, 0b11101000},
        // XOR3: odd parity rows 1,2,4,7
        GateCase{"XOR3", 3, 0b10010110},
        // AOI21: !((A&B)|C) -> rows where A&B or C: 3,4,5,6,7 low
        GateCase{"AOI21", 3, 0b00000111},
        // OAI21: !((A|B)&C) — low only on rows 5,6,7
        GateCase{"OAI21", 3, 0b00011111},
        // MUX2 pins A,B,S: S=0 -> A (rows 0..3: A=bit0), S=1 -> B
        GateCase{"MUX2", 3, 0b11001010}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
      return info.param.name;
    });

TEST(FlopCells, Flags) {
  EXPECT_FALSE(lib().by_name("DFF").has_reset);
  EXPECT_FALSE(lib().by_name("DFF").has_enable);
  EXPECT_TRUE(lib().by_name("DFFR").has_reset);
  EXPECT_FALSE(lib().by_name("DFFR").has_enable);
  EXPECT_TRUE(lib().by_name("DFFE").has_enable);
  EXPECT_TRUE(lib().by_name("DFFRE").has_enable);
  EXPECT_TRUE(lib().by_name("DFFRE").has_reset);
  EXPECT_EQ(lib().by_name("DFFRE").pin_names,
            (std::vector<std::string>{"D", "E", "R"}));
}

TEST(FlopCells, PinIndex) {
  const CellType& t = lib().by_name("DFFRE");
  EXPECT_EQ(t.pin_index("D"), 0);
  EXPECT_EQ(t.pin_index("E"), 1);
  EXPECT_EQ(t.pin_index("R"), 2);
  EXPECT_EQ(t.pin_index("Z"), -1);
}

TEST(TieCells, ConstantOutputs) {
  EXPECT_FALSE(lib().by_name("TIE0").eval(0));
  EXPECT_TRUE(lib().by_name("TIE1").eval(0));
}

TEST(Timing, LaterPinsFaster) {
  const CellType& t = lib().by_name("NAND3");
  EXPECT_GT(t.intrinsic_delay[0], t.intrinsic_delay[2]);
}

TEST(Timing, MuxSelectPinSlowest) {
  const CellType& t = lib().by_name("MUX2");
  EXPECT_GT(t.intrinsic_delay[2], t.intrinsic_delay[0]);
  EXPECT_GT(t.intrinsic_delay[2], t.intrinsic_delay[1]);
}

TEST(Timing, HighDriveHasLowerResistance) {
  EXPECT_LT(lib().by_name("INVX4").drive_res, lib().by_name("INV").drive_res);
  EXPECT_LT(lib().by_name("BUFX4").drive_res, lib().by_name("BUF").drive_res);
}

}  // namespace
}  // namespace moss::cell
