#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "netlist/netlist.hpp"

namespace moss::netlist {
namespace {

using cell::standard_library;

/// a --AND2--+--DFF--> q --INV--> out
/// b --------+
Netlist tiny() {
  Netlist nl(standard_library(), "tiny");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_cell("AND2", "g_and", {a, b});
  const NodeId q = nl.add_cell("DFF", "r_q", {g});
  const NodeId inv = nl.add_cell("INV", "g_inv", {q});
  nl.add_output("out", inv);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicCounts) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.num_nodes(), 6u);
  EXPECT_EQ(nl.num_cells(), 3u);
  EXPECT_EQ(nl.flops().size(), 1u);
  EXPECT_EQ(nl.num_comb_cells(), 2u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Netlist, FanoutDerived) {
  const Netlist nl = tiny();
  const NodeId a = nl.find("a");
  const NodeId g = nl.find("g_and");
  ASSERT_NE(a, kInvalidNode);
  ASSERT_EQ(nl.node(a).fanout.size(), 1u);
  EXPECT_EQ(nl.node(a).fanout[0], g);
}

TEST(Netlist, Levels) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.node(nl.find("a")).level, 0);
  EXPECT_EQ(nl.node(nl.find("g_and")).level, 1);
  EXPECT_EQ(nl.node(nl.find("r_q")).level, 0);   // flop is a cycle source
  EXPECT_EQ(nl.node(nl.find("g_inv")).level, 1);
  EXPECT_EQ(nl.max_level(), 1);
}

TEST(Netlist, TopoOrderRespectsCombDeps) {
  const Netlist nl = tiny();
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), nl.num_nodes());
  std::vector<int> pos(nl.num_nodes());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  }
  // AND2 after its inputs; INV after flop.
  EXPECT_GT(pos[static_cast<std::size_t>(nl.find("g_and"))],
            pos[static_cast<std::size_t>(nl.find("a"))]);
  EXPECT_GT(pos[static_cast<std::size_t>(nl.find("g_inv"))],
            pos[static_cast<std::size_t>(nl.find("r_q"))]);
}

TEST(Netlist, FlopFeedbackLoopIsFine) {
  // q = DFF(INV(q)) — a toggle flop; legal because the flop breaks the cycle.
  Netlist nl(standard_library(), "toggle");
  const NodeId q = nl.add_cell("DFF", "q", {kInvalidNode});
  const NodeId inv = nl.add_cell("INV", "n", {q});
  nl.connect(q, 0, inv);
  nl.add_output("out", q);
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, CombinationalCycleRejected) {
  Netlist nl(standard_library(), "cycle");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_cell("AND2", "g1", {a, kInvalidNode});
  const NodeId g2 = nl.add_cell("INV", "g2", {g1});
  nl.connect(g1, 1, g2);
  nl.add_output("out", g1);
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(Netlist, UnconnectedPinRejected) {
  Netlist nl(standard_library(), "open");
  const NodeId a = nl.add_input("a");
  nl.add_cell("AND2", "g", {a, kInvalidNode});
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(Netlist, WrongPinCountRejected) {
  Netlist nl(standard_library(), "bad");
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_cell("AND2", "g", {a}), Error);
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl(standard_library(), "dup");
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), Error);
}

TEST(Netlist, RtlRegisterProvenance) {
  Netlist nl(standard_library(), "prov");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_cell("DFF", "q", {a});
  nl.set_rtl_register(q, "count[3]");
  nl.add_output("o", q);
  nl.finalize();
  EXPECT_EQ(nl.node(q).rtl_register, "count[3]");
  EXPECT_THROW(nl.set_rtl_register(a, "x"), Error);
}

TEST(Netlist, OutputLoadSumsPinCaps) {
  const Netlist nl = tiny();
  const NodeId a = nl.find("a");
  const auto& and2 = standard_library().by_name("AND2");
  // a drives one AND2 pin plus one wire branch (0.8 fF).
  EXPECT_NEAR(nl.output_load(a), and2.pin_cap[0] + 0.8, 1e-9);
}

TEST(Netlist, StatsMatch) {
  const Netlist nl = tiny();
  const NetlistStats s = stats(nl);
  EXPECT_EQ(s.cells, 3u);
  EXPECT_EQ(s.flops, 1u);
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.levels, 1);
  EXPECT_GT(s.area, 0.0);
}

TEST(Netlist, MultiPinSameDriver) {
  // Both AND2 pins fed by the same input: levelization still works.
  Netlist nl(standard_library(), "mp");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("AND2", "g", {a, a});
  nl.add_output("o", g);
  nl.finalize();
  EXPECT_EQ(nl.node(g).level, 1);
  EXPECT_EQ(nl.node(a).fanout.size(), 1u);  // deduplicated
}

}  // namespace
}  // namespace moss::netlist
