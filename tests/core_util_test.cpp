#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core_util/check.hpp"
#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "core_util/thread_pool.hpp"

namespace moss {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64Bounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng r(5);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(3);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Strings, SplitBasic) {
  const auto v = split("a,b;c", ",;");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitDropsEmpty) {
  const auto v = split(",,a,,b,", ",");
  ASSERT_EQ(v.size(), 2u);
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC_9"), "abc_9"); }

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Strings, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

TEST(Check, ThrowsTypedError) {
  EXPECT_THROW(MOSS_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(MOSS_CHECK(true, "fine"));
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(0, 64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, MapResultsMatchSerialAtAnyThreadCount) {
  const auto fn = [](std::size_t i) {
    return static_cast<float>(i) * 0.37f + 1.0f / (static_cast<float>(i) + 1);
  };
  ThreadPool serial(1);
  const std::vector<float> want = serial.parallel_map(257, fn);
  for (const std::size_t t : {2u, 3u, 8u}) {
    ThreadPool pool(t);
    const std::vector<float> got = pool.parallel_map(257, fn);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "thread count " << t << " index " << i;
    }
  }
}

TEST(ThreadPool, MapSupportsMoveOnlyish) {
  // Result type without a default constructor.
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  ThreadPool pool(3);
  const auto out = pool.parallel_map(
      10, [](std::size_t i) { return NoDefault(static_cast<int>(i) * 2); });
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("index 57");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.parallel_map(0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, ZeroPicksHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(Check, MessageContainsContext) {
  try {
    MOSS_CHECK(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

TEST(RngState, SaveLoadRoundTripContinuesStream) {
  Rng a(7);
  for (int i = 0; i < 17; ++i) a();
  a.normal();  // leave a cached Box-Muller value in flight
  const Rng::State st = a.save_state();
  Rng b(999);
  b.load_state(st);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(ContextError, RendersFramesAndExposesValues) {
  const ContextError e("crc mismatch",
                       {{"file", "m.ckpt"}, {"section", "param:w"}});
  EXPECT_EQ(std::string(e.what()),
            "crc mismatch [file=m.ckpt, section=param:w]");
  EXPECT_EQ(e.message(), "crc mismatch");
  EXPECT_EQ(e.context_value("section"), "param:w");
  EXPECT_EQ(e.context_value("absent"), "");
}

TEST(ContextError, BuilderAccumulatesAndFails) {
  ErrorContext ctx;
  ctx.add("file", "a.ckpt").add("section", "adam");
  ctx.set("section", "manifest");  // replace, not append
  ctx.check(true, "must not throw");
  try {
    ctx.fail("boom");
    FAIL() << "fail() returned";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("file"), "a.ckpt");
    EXPECT_EQ(e.context_value("section"), "manifest");
  }
}

TEST(Fault, ArmedSiteFiresExactlyOnNthHit) {
  testing::disarm_all_faults();
  testing::arm_fault("test.site", 3);
  EXPECT_FALSE(testing::fault_fires("test.site"));
  EXPECT_FALSE(testing::fault_fires("test.site"));
  EXPECT_TRUE(testing::fault_fires("test.site"));
  // Later hits never fire again: a resumed run completes.
  EXPECT_FALSE(testing::fault_fires("test.site"));
  EXPECT_EQ(testing::fault_hits("test.site"), 4u);
  testing::disarm_all_faults();
}

TEST(Fault, UnarmedSiteNeverFires) {
  testing::disarm_all_faults();
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(testing::fault_fires("never.armed"));
  }
}

TEST(Fault, FaultPointThrowsInjectedFault) {
  testing::disarm_all_faults();
  testing::arm_fault("test.point");
  EXPECT_THROW(MOSS_FAULT_POINT("test.point"), testing::InjectedFault);
  EXPECT_NO_THROW(MOSS_FAULT_POINT("test.point"));
  testing::disarm_all_faults();
}

TEST(Fault, ShortWriteBufStopsAtLimit) {
  std::ostringstream sink;
  testing::ShortWriteBuf buf(sink.rdbuf(), 10);
  std::ostream out(&buf);
  out << "0123456789overflow";
  EXPECT_FALSE(out.good());
  EXPECT_EQ(sink.str(), "0123456789");
  EXPECT_EQ(buf.written(), 10u);
}

}  // namespace
}  // namespace moss
