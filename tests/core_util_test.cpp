#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "core_util/strings.hpp"

namespace moss {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64Bounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng r(5);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(3);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Strings, SplitBasic) {
  const auto v = split("a,b;c", ",;");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitDropsEmpty) {
  const auto v = split(",,a,,b,", ",");
  ASSERT_EQ(v.size(), 2u);
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC_9"), "abc_9"); }

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Strings, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

TEST(Check, ThrowsTypedError) {
  EXPECT_THROW(MOSS_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(MOSS_CHECK(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    MOSS_CHECK(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace moss
