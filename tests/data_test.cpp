#include <gtest/gtest.h>

#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "data/dataset.hpp"
#include "data/stats.hpp"
#include "data/generators.hpp"
#include "rtl/printer.hpp"
#include "sim/equivalence.hpp"
#include "synth/synthesize.hpp"

namespace moss::data {
namespace {

using cell::standard_library;

class FamilyRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyRoundTrip, GeneratesValidAndSynthesizable) {
  DesignSpec spec;
  spec.family = GetParam();
  spec.size_hint = 2;
  spec.seed = 42;
  const rtl::Module m = generate(spec);
  EXPECT_FALSE(m.regs.empty() && m.wires.empty());
  // Synthesize and verify cycle-exact equivalence against the RTL model.
  const auto nl = synth::synthesize(m, standard_library());
  EXPECT_GT(nl.num_cells(), 0u);
  Rng rng(fnv1a64(spec.family));
  const auto res = sim::check_equivalence(m, nl, 200, rng);
  EXPECT_TRUE(res.equivalent) << res.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyRoundTrip,
    ::testing::ValuesIn(families()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

class FamilySeeds : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilySeeds, SeedsVaryStructure) {
  DesignSpec a{GetParam(), 2, 1, "a"};
  DesignSpec b{GetParam(), 3, 2, "b"};
  const auto na = synth::synthesize(generate(a), standard_library());
  const auto nb = synth::synthesize(generate(b), standard_library());
  // Different size hints must give different circuit sizes.
  EXPECT_NE(na.num_cells(), nb.num_cells());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilySeeds, ::testing::ValuesIn(families()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(Generators, DeterministicForSpec) {
  DesignSpec s{"alu", 2, 77, "alu_d"};
  const auto v1 = rtl::to_verilog(generate(s));
  const auto v2 = rtl::to_verilog(generate(s));
  EXPECT_EQ(v1, v2);
}

TEST(Generators, UnknownFamilyThrows) {
  DesignSpec s{"warp_drive", 1, 0, ""};
  EXPECT_THROW(generate(s), Error);
}

TEST(Generators, Table1SpecsCoverPaperCircuits) {
  const auto specs = table1_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "max_selector");
  EXPECT_EQ(specs[7].name, "mult_16x32_to_48");
  // Cell counts increase from first to last (paper: 278 -> 4144).
  const auto first =
      synth::synthesize(generate(specs[0]), standard_library());
  const auto last =
      synth::synthesize(generate(specs[7]), standard_library());
  EXPECT_LT(first.num_cells(), last.num_cells());
  EXPECT_GT(first.num_cells(), 50u);
  EXPECT_GT(last.num_cells(), 1000u);
}

TEST(Generators, CorpusSpecsCycleFamilies) {
  const auto specs = corpus_specs(30, 5);
  ASSERT_EQ(specs.size(), 30u);
  EXPECT_NE(specs[0].family, specs[1].family);
  // Names unique.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_NE(specs[i].name, specs[i - 1].name);
  }
}

TEST(Dataset, LabelsAreComplete) {
  DesignSpec s{"gray_counter", 2, 3, "gc"};
  DatasetConfig cfg;
  cfg.sim_cycles = 500;
  const LabeledCircuit lc = label_circuit(s, standard_library(), cfg);
  EXPECT_EQ(lc.toggle.size(), lc.netlist.num_nodes());
  EXPECT_EQ(lc.one_prob.size(), lc.netlist.num_nodes());
  EXPECT_EQ(lc.flop_arrival.size(), lc.netlist.flops().size());
  EXPECT_GT(lc.power_uw, 0.0);
  EXPECT_FALSE(lc.module_text.empty());
  EXPECT_EQ(lc.reg_prompts.size(), lc.module.regs.size());
  for (const double t : lc.toggle) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
  for (const double at : lc.flop_arrival) EXPECT_GE(at, 0.0);
}

TEST(Dataset, FepLabelsAreOracleProvenByDefault) {
  DesignSpec s{"gray_counter", 1, 3, "gc_oracle"};
  DatasetConfig cfg;
  cfg.sim_cycles = 200;
  const LabeledCircuit lc = label_circuit(s, standard_library(), cfg);
  // The module folds against its own synthesis in the shared-strash miter,
  // so the default config proves every generator circuit.
  EXPECT_TRUE(lc.fep_equivalent);
  EXPECT_EQ(lc.fep_label_source, FepLabelSource::kOracleProven);
  EXPECT_FALSE(lc.fep_label_detail.empty());

  // Opting out falls back to the generator article of faith.
  cfg.oracle_labels = false;
  const LabeledCircuit trusted = label_circuit(s, standard_library(), cfg);
  EXPECT_TRUE(trusted.fep_equivalent);
  EXPECT_EQ(trusted.fep_label_source, FepLabelSource::kGenerator);
}

TEST(Dataset, LabelNetlistIsAnInherentHardNegative) {
  DesignSpec s{"gray_counter", 1, 3, "gc_neg"};
  DatasetConfig cfg;
  cfg.sim_cycles = 200;
  const LabeledCircuit golden = label_circuit(s, standard_library(), cfg);
  const LabeledCircuit neg = label_netlist(golden.netlist, cfg);
  EXPECT_FALSE(neg.fep_equivalent);
  EXPECT_EQ(neg.fep_label_source, FepLabelSource::kOracleRefuted);
  EXPECT_TRUE(neg.module_text.empty());
  EXPECT_TRUE(neg.reg_prompts.empty());
  // The EDA labels are still collected — identically to the golden run.
  EXPECT_EQ(neg.toggle.size(), golden.toggle.size());
  EXPECT_EQ(neg.toggle, golden.toggle);
  EXPECT_EQ(neg.power_uw, golden.power_uw);
}

TEST(DatasetStats, SummarizesCorrectly) {
  DatasetConfig cfg;
  cfg.sim_cycles = 150;
  const auto ds = build_dataset(corpus_specs(5, 17, 1, 2),
                                standard_library(), cfg);
  const DatasetStats s = compute_stats(ds);
  EXPECT_EQ(s.circuits, 5u);
  EXPECT_GE(s.max_cells, s.min_cells);
  EXPECT_GT(s.total_flops, 0u);
  EXPECT_GT(s.mean_toggle, 0.0);
  EXPECT_LT(s.mean_toggle, 1.0);
  EXPECT_GT(s.max_arrival_ps, 0.0);
  std::size_t fam_total = 0;
  for (const auto& [f, c] : s.per_family) fam_total += c;
  EXPECT_EQ(fam_total, 5u);
  const std::string text = to_string(s);
  EXPECT_NE(text.find("5 circuits"), std::string::npos);
}

TEST(DatasetStats, EmptyDataset) {
  const DatasetStats s = compute_stats({});
  EXPECT_EQ(s.circuits, 0u);
  EXPECT_EQ(s.total_cells, 0u);
}

TEST(SplitDataset, DeterministicAndComplete) {
  DatasetConfig cfg;
  cfg.sim_cycles = 100;
  const auto ds = build_dataset(corpus_specs(10, 23, 1, 1),
                                standard_library(), cfg);
  const Split s1 = split_dataset(ds, 0.3, 7);
  const Split s2 = split_dataset(ds, 0.3, 7);
  EXPECT_EQ(s1.train.size(), s2.train.size());
  EXPECT_EQ(s1.train.size() + s1.test.size(), ds.size());
  // A different salt permutes the assignment (with 10 circuits, nearly
  // always different).
  const Split s3 = split_dataset(ds, 0.3, 99);
  EXPECT_TRUE(s3.train.size() != s1.train.size() ||
              !std::equal(s1.train.begin(), s1.train.end(),
                          s3.train.begin()));
  // Extremes.
  EXPECT_TRUE(split_dataset(ds, 0.0).test.empty());
  EXPECT_TRUE(split_dataset(ds, 1.0).train.empty());
}

TEST(Dataset, BuildDatasetMultiple) {
  DatasetConfig cfg;
  cfg.sim_cycles = 200;
  const auto specs = corpus_specs(4, 9, 1, 1);
  const auto ds = build_dataset(specs, standard_library(), cfg);
  ASSERT_EQ(ds.size(), 4u);
  for (const auto& lc : ds) {
    EXPECT_GT(lc.netlist.num_cells(), 0u);
  }
}

}  // namespace
}  // namespace moss::data
