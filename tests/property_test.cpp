// Cross-module property tests: invariants that must hold for every design
// family and seed, checked over the generated corpus.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "core_util/strings.hpp"
#include "data/generators.hpp"
#include "rtl/eval.hpp"
#include "rtl/lint.hpp"
#include "rtl/parser.hpp"
#include "rtl/printer.hpp"
#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

namespace moss {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

struct Case {
  std::string family;
  int size;
};

std::vector<Case> sweep_cases() {
  std::vector<Case> out;
  for (const auto& fam : data::families()) {
    out.push_back({fam, 1});
    out.push_back({fam, 3});
  }
  return out;
}

class FamilySweep : public ::testing::TestWithParam<Case> {
 protected:
  Netlist netlist() const {
    const auto& p = GetParam();
    data::DesignSpec spec{p.family, p.size, 0xAB + static_cast<std::uint64_t>(p.size), ""};
    return synth::synthesize(data::generate(spec), standard_library());
  }
};

TEST_P(FamilySweep, ArrivalIsMonotoneAlongFanin) {
  const Netlist nl = netlist();
  const sta::TimingAnalysis ta(nl);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.kind != NodeKind::kCell || !nl.is_comb_cell(id)) continue;
    for (const NodeId f : n.fanin) {
      EXPECT_GE(ta.arrival(id), ta.arrival(f)) << nl.node(id).name;
    }
  }
}

TEST_P(FamilySweep, WorstArrivalDominatesFlops) {
  const Netlist nl = netlist();
  const sta::TimingAnalysis ta(nl);
  for (const double at : ta.all_flop_arrivals()) {
    EXPECT_LE(at, ta.worst_arrival() + 1e-9);
  }
}

TEST_P(FamilySweep, ToggleBoundedByProbability) {
  // A signal at logic 1 with probability p can toggle at most 2·min(p,1-p)
  // per cycle (each transition needs a visit to the minority value).
  const Netlist nl = netlist();
  Rng rng(fnv1a64(GetParam().family));
  const auto act = sim::random_activity(nl, 600, rng);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const double p = act.one_prob[i];
    const double bound = 2.0 * std::min(p, 1.0 - p);
    EXPECT_LE(act.toggle[i], bound + 0.01)
        << nl.node(static_cast<NodeId>(i)).name;
  }
}

TEST_P(FamilySweep, PowerLinearInFrequency) {
  const Netlist nl = netlist();
  Rng rng(1);
  const auto act = sim::random_activity(nl, 300, rng);
  power::PowerOptions o1, o2;
  o1.clock_ghz = 1.0;
  o2.clock_ghz = 2.5;
  const auto r1 = power::analyze_power(nl, act.toggle, o1);
  const auto r2 = power::analyze_power(nl, act.toggle, o2);
  EXPECT_NEAR(r2.dynamic_uw, 2.5 * r1.dynamic_uw, 1e-6 * r2.dynamic_uw);
  EXPECT_DOUBLE_EQ(r1.leakage_uw, r2.leakage_uw);
}

TEST_P(FamilySweep, SweepIsIdempotent) {
  const Netlist nl = netlist();
  const Netlist swept = synth::sweep_dead_logic(nl);
  const Netlist swept2 = synth::sweep_dead_logic(swept);
  EXPECT_EQ(swept.num_cells(), swept2.num_cells());
  // The default flow already sweeps, so nothing should disappear.
  EXPECT_EQ(nl.num_cells(), swept.num_cells());
}

TEST_P(FamilySweep, BufferedNetlistMeetsLoadLimits) {
  const Netlist nl = netlist();
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.kind != NodeKind::kCell) continue;
    EXPECT_LE(nl.output_load(id),
              nl.library().type(n.type).max_load * 1.05)
        << n.name;
  }
}

TEST_P(FamilySweep, GeneratedRtlLintsClean) {
  const auto& p = GetParam();
  data::DesignSpec spec{p.family, p.size,
                        0xAB + static_cast<std::uint64_t>(p.size), ""};
  const rtl::Module m = data::generate(spec);
  const auto issues = rtl::lint(m);
  EXPECT_TRUE(issues.empty()) << rtl::to_string(issues);
}

TEST_P(FamilySweep, PrintParseRoundTripIsFunctionallyIdentical) {
  const auto& p = GetParam();
  data::DesignSpec spec{p.family, p.size,
                        0xAB + static_cast<std::uint64_t>(p.size), ""};
  const rtl::Module original = data::generate(spec);
  const rtl::Module reparsed = rtl::parse_verilog(rtl::to_verilog(original));
  rtl::Evaluator e1(original), e2(reparsed);
  Rng rng(fnv1a64(p.family) + static_cast<std::uint64_t>(p.size));
  std::vector<std::uint64_t> in(original.inputs.size());
  for (int cyc = 0; cyc < 100; ++cyc) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      std::uint64_t v = rng() & rtl::width_mask(original.inputs[i].width);
      if (cyc < 2 && original.inputs[i].name == original.reset_port) v = 1;
      in[i] = v;
    }
    e1.step(in);
    e2.step(in);
    ASSERT_EQ(e1.outputs(), e2.outputs()) << "cycle " << cyc;
  }
}

TEST_P(FamilySweep, AigConversionIsCycleExact) {
  const Netlist nl = netlist();
  const aig::AigConversion conv = aig::from_netlist(nl);
  sim::Simulator gate(nl);
  aig::AigSimulator asim(conv.aig);
  Rng rng(fnv1a64(GetParam().family) ^ 0xA16);
  std::vector<std::uint8_t> pis(nl.inputs().size());
  for (int cyc = 0; cyc < 60; ++cyc) {
    for (auto& v : pis) v = rng.bernoulli(0.5) ? 1 : 0;
    gate.step(pis);
    asim.step(pis);
    for (const NodeId o : nl.outputs()) {
      ASSERT_EQ(gate.value(o),
                asim.value(conv.node_lit[static_cast<std::size_t>(o)]))
          << nl.node(o).name << " cycle " << cyc;
    }
  }
}

TEST_P(FamilySweep, LevelsConsistentWithTopoOrder) {
  const Netlist nl = netlist();
  std::vector<int> pos(nl.num_nodes());
  const auto& topo = nl.topo_order();
  for (std::size_t i = 0; i < topo.size(); ++i) {
    pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (!nl.is_comb_cell(id)) continue;
    for (const NodeId f : nl.node(id).fanin) {
      EXPECT_LT(pos[static_cast<std::size_t>(f)],
                pos[static_cast<std::size_t>(id)]);
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_s" + std::to_string(info.param.size);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

}  // namespace
}  // namespace moss
