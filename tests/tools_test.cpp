// Tests for the flow-interop tooling: VCD dump, structural Verilog writer,
// STA slack/report, parameter checkpointing.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "netlist/writer.hpp"
#include "rtl/parser.hpp"
#include "sim/vcd.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"
#include "tensor/serialize.hpp"

namespace moss {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

Netlist toggle_circuit() {
  Netlist nl(standard_library(), "tog");
  const NodeId q = nl.add_cell("DFF", "q", {netlist::kInvalidNode});
  const NodeId inv = nl.add_cell("INV", "n", {q});
  nl.connect(q, 0, inv);
  nl.add_output("y", q);
  nl.finalize();
  return nl;
}

TEST(Vcd, HeaderAndChanges) {
  const Netlist nl = toggle_circuit();
  std::ostringstream os;
  sim::VcdWriter vcd(os, nl);
  vcd.add_ports();
  sim::Simulator s(nl);
  for (int i = 0; i < 4; ++i) {
    s.step({});
    vcd.sample(s);
  }
  vcd.finish();
  const std::string text = os.str();
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! y $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  // The toggle flop output changes every cycle: expect both 0! and 1!.
  EXPECT_NE(text.find("0!"), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  // Timestamps present.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#3000"), std::string::npos);
}

TEST(Vcd, OnlyChangedSignalsEmitted) {
  Netlist nl(standard_library(), "const");
  const NodeId t1 = nl.add_cell("TIE1", "t1", {});
  nl.add_output("y", t1);
  nl.finalize();
  std::ostringstream os;
  sim::VcdWriter vcd(os, nl);
  vcd.add_ports();
  sim::Simulator s(nl);
  for (int i = 0; i < 5; ++i) {
    s.step({});
    vcd.sample(s);
  }
  const std::string text = os.str();
  // Constant signal dumps once (initial), never again.
  EXPECT_EQ(text.find("1!"), text.rfind("1!"));
}

TEST(Vcd, AddAfterHeaderRejected) {
  const Netlist nl = toggle_circuit();
  std::ostringstream os;
  sim::VcdWriter vcd(os, nl);
  vcd.add_ports();
  sim::Simulator s(nl);
  s.step({});
  vcd.sample(s);
  EXPECT_THROW(vcd.add_signal(0), Error);
}

TEST(StructuralWriter, EmitsInstancesAndPorts) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module w (input clk, input rst, input [1:0] a, output [1:0] y);
      reg [1:0] r;
      always @(posedge clk) begin
        if (rst) r <= 2'd0; else r <= a ^ r;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const std::string v = netlist::to_structural_verilog(nl);
  EXPECT_NE(v.find("module w ("), std::string::npos);
  EXPECT_NE(v.find("input clk"), std::string::npos);
  EXPECT_NE(v.find("DFFR"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
  EXPECT_NE(v.find("XOR2"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Escaped identifiers for bit nets.
  EXPECT_NE(v.find("\\a[0] "), std::string::npos);
}

TEST(StaSlack, AutoPeriodHasNoViolations) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module s (input clk, input rst, input [7:0] a, output [7:0] y);
      reg [7:0] r;
      always @(posedge clk) begin
        if (rst) r <= 8'd0; else r <= r + a;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  sta::TimingAnalysis ta(nl);
  EXPECT_EQ(ta.violations(), 0u);
  EXPECT_GT(ta.clock_period(), ta.worst_arrival());
  const auto sl = ta.slacks();
  ASSERT_FALSE(sl.empty());
  // Sorted ascending by slack; worst endpoint first with smallest slack.
  for (std::size_t i = 1; i < sl.size(); ++i) {
    EXPECT_LE(sl[i - 1].slack_ps, sl[i].slack_ps);
  }
}

TEST(StaSlack, TightPeriodViolates) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module t (input clk, input rst, input [7:0] a, input [7:0] b,
              output [15:0] p);
      wire [15:0] ax;
      wire [15:0] bx;
      reg [15:0] r;
      assign ax = {8'd0, a};
      assign bx = {8'd0, b};
      always @(posedge clk) begin
        if (rst) r <= 16'd0; else r <= ax * bx;
      end
      assign p = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  sta::StaOptions opts;
  opts.clock_period_ps = 100.0;  // far too fast for a 16-bit multiply
  sta::TimingAnalysis ta(nl, opts);
  EXPECT_GT(ta.violations(), 0u);
  const std::string rep = ta.report_timing(2);
  EXPECT_NE(rep.find("VIOLATED"), std::string::npos);
  EXPECT_NE(rep.find("Path 1"), std::string::npos);
}

TEST(Checkpoint, RoundTrip) {
  Rng rng(3);
  tensor::ParameterSet a, b;
  tensor::Linear la(4, 3, rng, a, "l");
  Rng rng2(99);  // different init
  tensor::Linear lb(4, 3, rng2, b, "l");
  ASSERT_NE(a.tensors()[0].data(), b.tensors()[0].data());

  std::stringstream ss;
  tensor::save_parameters(ss, a);
  tensor::load_parameters(ss, b);
  EXPECT_EQ(a.tensors()[0].data(), b.tensors()[0].data());
  EXPECT_EQ(a.tensors()[1].data(), b.tensors()[1].data());
}

TEST(Checkpoint, MismatchRejected) {
  Rng rng(3);
  tensor::ParameterSet a, wrong_shape, wrong_name;
  tensor::Linear la(4, 3, rng, a, "l");
  tensor::Linear lw(4, 2, rng, wrong_shape, "l");
  tensor::Linear ln(4, 3, rng, wrong_name, "other");

  std::stringstream s1;
  tensor::save_parameters(s1, a);
  EXPECT_THROW(tensor::load_parameters(s1, wrong_shape), Error);
  std::stringstream s2;
  tensor::save_parameters(s2, a);
  EXPECT_THROW(tensor::load_parameters(s2, wrong_name), Error);
  std::stringstream s3("garbage");
  EXPECT_THROW(tensor::load_parameters(s3, a), Error);
}

TEST(Checkpoint, TruncatedRejected) {
  Rng rng(3);
  tensor::ParameterSet a;
  tensor::Linear la(8, 8, rng, a, "l");
  std::stringstream ss;
  tensor::save_parameters(ss, a);
  std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(tensor::load_parameters(cut, a), Error);
}

TEST(Checkpoint, MissingFileErrorNamesFile) {
  Rng rng(3);
  tensor::ParameterSet a;
  tensor::Linear la(4, 3, rng, a, "l");
  const std::string path = "/tmp/moss_tools_no_such_file.ckpt";
  std::remove(path.c_str());
  try {
    tensor::load_parameters_file(path, a);
    FAIL() << "missing checkpoint file loaded";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("file"), path) << e.what();
  }
}

// ---------------------------------------------------------------------------
// moss_cli smoke tests (run the real binary; skipped outside the build tree)

/// Run the moss_cli binary next to this test's build directory; returns its
/// exit status or -1 if the binary is not there (e.g. standalone test runs).
int run_cli(const std::string& args, std::string& output) {
  const std::string cli = "../examples/moss_cli";
  if (!std::ifstream(cli).good()) return -1;
  const std::string out_path = "/tmp/moss_tools_cli_out.txt";
  const int rc =
      std::system((cli + " " + args + " > " + out_path + " 2>&1").c_str());
  std::ifstream in(out_path);
  output.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  std::remove(out_path.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliSmoke, NonexistentCheckpointFailsWithMessage) {
  std::string output;
  const int rc = run_cli("ckpt /tmp/moss_tools_missing.ckpt", output);
  if (rc == -1) GTEST_SKIP() << "moss_cli binary not found";
  EXPECT_EQ(rc, 3) << output;
  EXPECT_NE(output.find("checkpoint error"), std::string::npos) << output;
  EXPECT_NE(output.find("moss_tools_missing.ckpt"), std::string::npos)
      << output;
}

TEST(CliSmoke, CorruptCheckpointFailsWithMessage) {
  const std::string path = "/tmp/moss_tools_corrupt.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "MOSSCKP1 this is not a real checkpoint";
  }
  std::string output;
  const int rc = run_cli("ckpt " + path, output);
  std::remove(path.c_str());
  if (rc == -1) GTEST_SKIP() << "moss_cli binary not found";
  EXPECT_EQ(rc, 3) << output;
  EXPECT_NE(output.find("checkpoint error"), std::string::npos) << output;
}

TEST(CliSmoke, ValidCheckpointSummarized) {
  const std::string path = "/tmp/moss_tools_valid.ckpt";
  Rng rng(3);
  tensor::ParameterSet a;
  tensor::Linear la(4, 3, rng, a, "l");
  tensor::save_parameters_file(path, a);
  std::string output;
  const int rc = run_cli("ckpt " + path, output);
  std::remove(path.c_str());
  if (rc == -1) GTEST_SKIP() << "moss_cli binary not found";
  EXPECT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("checksums OK"), std::string::npos) << output;
}

}  // namespace
}  // namespace moss
