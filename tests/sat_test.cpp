// moss::sat test suite: CDCL solver units (propagation, learning,
// determinism, budgets), Tseitin cone encoding, the miter-based
// equivalence oracle (synthesis variants proven equivalent, seeded mutants
// proven inequivalent with sim-confirmed counterexamples, typed UNKNOWN
// verdicts), and the hard-negative miner including byte-stable export.
//
// The heavyweight check is the cone property test: for EVERY design
// family, every AIG cone with <= 10 support nodes is enumerated
// exhaustively through aig::AigSimulator and cross-checked against the
// solver in both polarities — SAT models are replayed through the
// simulator, UNSAT claims are verified by exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "bdd/formal.hpp"
#include "cell/library.hpp"
#include "core_util/error.hpp"
#include "data/generators.hpp"
#include "data/mutate.hpp"
#include "sat/cnf.hpp"
#include "sat/mine.hpp"
#include "sat/oracle.hpp"
#include "sat/solver.hpp"
#include "synth/synthesize.hpp"

namespace moss {
namespace {

netlist::Netlist make_design(const std::string& family, std::uint64_t seed,
                             const synth::SynthOptions& opts = {}) {
  data::DesignSpec spec;
  spec.family = family;
  spec.size_hint = 1;
  spec.seed = seed;
  spec.name = family + "_sat";
  return synth::synthesize(data::generate(spec), cell::standard_library(),
                           opts);
}

// ---------------------------------------------------------------------------
// Solver units

TEST(SatSolver, TinySatAndUnsat) {
  sat::Solver s;
  const sat::Var x = s.new_var();
  const sat::Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({sat::mk_lit(x, false), sat::mk_lit(y, false)}));
  ASSERT_TRUE(s.add_clause({sat::mk_lit(x, true), sat::mk_lit(y, false)}));
  ASSERT_TRUE(s.add_clause({sat::mk_lit(x, false), sat::mk_lit(y, true)}));
  EXPECT_EQ(s.solve(), sat::SolveStatus::kSat);
  EXPECT_TRUE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));

  sat::Solver u;
  const sat::Var a = u.new_var();
  const sat::Var b = u.new_var();
  ASSERT_TRUE(u.add_clause({sat::mk_lit(a, false), sat::mk_lit(b, false)}));
  ASSERT_TRUE(u.add_clause({sat::mk_lit(a, true), sat::mk_lit(b, false)}));
  ASSERT_TRUE(u.add_clause({sat::mk_lit(a, false), sat::mk_lit(b, true)}));
  ASSERT_TRUE(u.add_clause({sat::mk_lit(a, true), sat::mk_lit(b, true)}));
  EXPECT_EQ(u.solve(), sat::SolveStatus::kUnsat);
}

TEST(SatSolver, ClauseSimplification) {
  sat::Solver s;
  const sat::Var x = s.new_var();
  const sat::Var y = s.new_var();
  // Tautology (x v ~x v y) is dropped, not stored.
  ASSERT_TRUE(s.add_clause(
      {sat::mk_lit(x, false), sat::mk_lit(x, true), sat::mk_lit(y, false)}));
  EXPECT_EQ(s.num_clauses(), 0u);
  // Duplicate literals collapse to a unit, which assigns immediately.
  ASSERT_TRUE(s.add_clause({sat::mk_lit(x, false), sat::mk_lit(x, false)}));
  // A clause already false at level 0 empties out -> UNSAT database.
  ASSERT_TRUE(s.add_clause({sat::mk_lit(y, false)}));
  EXPECT_FALSE(s.add_clause({sat::mk_lit(x, true), sat::mk_lit(y, true)}));
  EXPECT_EQ(s.solve(), sat::SolveStatus::kUnsat);
}

TEST(SatSolver, EmptyClauseListIsUnsat) {
  sat::Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), sat::SolveStatus::kUnsat);
}

// Pigeonhole PHP(n+1, n): classic resolution-hard UNSAT family. n=4 forces
// real conflict learning (not just propagation) while staying fast.
TEST(SatSolver, PigeonholeUnsatExercisesLearning) {
  const int holes = 4, pigeons = 5;
  sat::Solver s;
  std::vector<std::vector<sat::Var>> v(pigeons,
                                       std::vector<sat::Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) v[p][h] = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {  // every pigeon sits somewhere
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(sat::mk_lit(v[p][h], false));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (int h = 0; h < holes; ++h) {  // no hole holds two pigeons
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        ASSERT_TRUE(s.add_clause(
            {sat::mk_lit(v[p][h], true), sat::mk_lit(v[q][h], true)}));
      }
    }
  }
  EXPECT_EQ(s.solve(), sat::SolveStatus::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned_clauses, 0u);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown) {
  const int holes = 7, pigeons = 8;  // hard enough to out-live 5 conflicts
  sat::Solver s;
  std::vector<std::vector<sat::Var>> v(pigeons,
                                       std::vector<sat::Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) v[p][h] = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(sat::mk_lit(v[p][h], false));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        ASSERT_TRUE(s.add_clause(
            {sat::mk_lit(v[p][h], true), sat::mk_lit(v[q][h], true)}));
      }
    }
  }
  EXPECT_EQ(s.solve(/*conflict_budget=*/5), sat::SolveStatus::kUnknown);
}

TEST(SatSolver, DeterministicForFixedSeed) {
  const auto build_and_solve = [](std::uint64_t seed) {
    sat::SolverConfig cfg;
    cfg.seed = seed;
    sat::Solver s(cfg);
    // 3-SAT-ish random-looking but fixed instance.
    std::vector<sat::Var> vars;
    for (int i = 0; i < 30; ++i) vars.push_back(s.new_var());
    Rng rng(42);  // clause generation fixed independently of solver seed
    for (int c = 0; c < 120; ++c) {
      std::vector<sat::Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(sat::mk_lit(vars[rng.index(vars.size())],
                                 rng.bernoulli(0.5)));
      }
      if (!s.add_clause(std::move(cl))) break;
    }
    const sat::SolveStatus st = s.solve();
    std::vector<bool> model;
    if (st == sat::SolveStatus::kSat) {
      for (const sat::Var v : vars) model.push_back(s.model_value(v));
    }
    return std::make_tuple(st, model, s.stats().conflicts,
                           s.stats().decisions, s.stats().propagations);
  };
  EXPECT_EQ(build_and_solve(1), build_and_solve(1));
  EXPECT_EQ(build_and_solve(7), build_and_solve(7));
}

// ---------------------------------------------------------------------------
// Tseitin cone encoding

TEST(SatCnf, EncodesXorConeCorrectly) {
  aig::Aig g;
  const auto a = g.add_pi();
  const auto b = g.add_pi();
  const aig::Lit root =
      g.xor2(aig::make_lit(a, false), aig::make_lit(b, false));
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sat::Solver s;
      const sat::CnfEncoding enc = sat::encode_cone(g, {root}, s);
      ASSERT_TRUE(s.add_clause({enc.lit(aig::make_lit(a, av == 0))}));
      ASSERT_TRUE(s.add_clause({enc.lit(aig::make_lit(b, bv == 0))}));
      const bool want = (av ^ bv) != 0;
      ASSERT_TRUE(
          s.add_clause({want ? enc.lit(root) : sat::lit_neg(enc.lit(root))}));
      EXPECT_EQ(s.solve(), sat::SolveStatus::kSat)
          << "xor(" << av << "," << bv << ") must be " << want;
      sat::Solver s2;
      const sat::CnfEncoding enc2 = sat::encode_cone(g, {root}, s2);
      ASSERT_TRUE(s2.add_clause({enc2.lit(aig::make_lit(a, av == 0))}));
      ASSERT_TRUE(s2.add_clause({enc2.lit(aig::make_lit(b, bv == 0))}));
      ASSERT_TRUE(s2.add_clause(
          {want ? sat::lit_neg(enc2.lit(root)) : enc2.lit(root)}));
      EXPECT_EQ(s2.solve(), sat::SolveStatus::kUnsat)
          << "xor(" << av << "," << bv << ") must not be " << !want;
    }
  }
}

TEST(SatCnf, LitOutsideConeIsCheckedError) {
  aig::Aig g;
  const auto a = g.add_pi();
  const auto b = g.add_pi();
  const aig::Lit in_cone = aig::make_lit(a, false);
  (void)b;
  sat::Solver s;
  const sat::CnfEncoding enc = sat::encode_cone(g, {in_cone}, s);
  EXPECT_TRUE(enc.encoded(in_cone));
  EXPECT_FALSE(enc.encoded(aig::make_lit(b, false)));
  EXPECT_THROW((void)enc.lit(aig::make_lit(b, false)), Error);
}

// ---------------------------------------------------------------------------
// Cone property test: CDCL vs exhaustive AigSimulator enumeration on every
// cone with <= 10 support nodes, across every design family.

/// Rebuild the cone of `root` as a standalone combinational AIG whose PIs
/// are the cone's support nodes (PIs AND latches of the original — a latch
/// is a free cut point for one combinational frame). Returns the rebuilt
/// root literal; `support_count` receives k.
aig::Lit rebuild_cone(const aig::Aig& g, aig::Lit root, aig::Aig& mini,
                      std::size_t* support_count) {
  // DFS cone collection.
  std::vector<std::uint32_t> stack{aig::lit_node(root)};
  std::vector<bool> in_cone(g.num_nodes(), false);
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (in_cone[n]) continue;
    in_cone[n] = true;
    const aig::AigNode& nd = g.node(n);
    if (nd.kind == aig::AigKind::kAnd) {
      stack.push_back(aig::lit_node(nd.fanin0));
      stack.push_back(aig::lit_node(nd.fanin1));
    }
  }
  // Ascending node ids are topological for ANDs; support nodes map to
  // fresh PIs in the same deterministic order.
  std::vector<aig::Lit> lit_of(g.num_nodes(), aig::kLitFalse);
  std::size_t support = 0;
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
    if (!in_cone[n]) continue;
    const aig::AigNode& nd = g.node(n);
    switch (nd.kind) {
      case aig::AigKind::kConst0:
        lit_of[n] = aig::kLitFalse;
        break;
      case aig::AigKind::kPi:
      case aig::AigKind::kLatch:
        lit_of[n] = aig::make_lit(mini.add_pi(), false);
        ++support;
        break;
      case aig::AigKind::kAnd: {
        const aig::Lit f0 = lit_of[aig::lit_node(nd.fanin0)] ^
                            (aig::lit_compl(nd.fanin0) ? 1u : 0u);
        const aig::Lit f1 = lit_of[aig::lit_node(nd.fanin1)] ^
                            (aig::lit_compl(nd.fanin1) ? 1u : 0u);
        lit_of[n] = mini.and2(f0, f1);
        break;
      }
    }
  }
  *support_count = support;
  return lit_of[aig::lit_node(root)] ^ (aig::lit_compl(root) ? 1u : 0u);
}

TEST(SatConeProperty, SolverAgreesWithExhaustiveSimOnAllSmallCones) {
  constexpr std::size_t kMaxSupport = 10;
  std::size_t cones_checked = 0, sat_models_replayed = 0,
              unsat_by_exhaustion = 0;
  for (const std::string& family : data::families()) {
    SCOPED_TRACE(family);
    const netlist::Netlist nl = make_design(family, 1);
    const aig::AigConversion conv = aig::from_netlist(nl);
    const aig::Aig& g = conv.aig;
    // Roots: every PO plus every latch next-state — the functions the
    // oracle actually reasons about.
    std::vector<aig::Lit> roots = g.pos();
    for (const std::uint32_t l : g.latches()) {
      roots.push_back(g.node(l).fanin0);
    }
    std::vector<bool> seen_node(g.num_nodes(), false);
    for (const aig::Lit r : roots) {
      if (seen_node[aig::lit_node(r)]) continue;  // same cone, same verdict
      seen_node[aig::lit_node(r)] = true;
      aig::Aig mini;
      std::size_t support = 0;
      const aig::Lit mroot = rebuild_cone(g, r, mini, &support);
      if (support > kMaxSupport) continue;
      mini.add_po(mroot);
      ++cones_checked;

      // Exhaustive truth table via the simulator.
      const std::size_t n_inputs = mini.pis().size();
      bool any_one = false, any_zero = false;
      aig::AigSimulator ref(mini);
      for (std::uint64_t m = 0; m < (1ull << n_inputs); ++m) {
        std::vector<std::uint8_t> pis(n_inputs);
        for (std::size_t i = 0; i < n_inputs; ++i) {
          pis[i] = static_cast<std::uint8_t>((m >> i) & 1);
        }
        ref.step(pis);
        (ref.output_values()[0] != 0 ? any_one : any_zero) = true;
      }

      // Solver, both polarities.
      for (const bool polarity : {true, false}) {
        sat::Solver s;
        const sat::CnfEncoding enc = sat::encode_cone(mini, {mroot}, s);
        const bool ok = s.add_clause(
            {polarity ? enc.lit(mroot) : sat::lit_neg(enc.lit(mroot))});
        const sat::SolveStatus st =
            ok ? s.solve() : sat::SolveStatus::kUnsat;
        const bool expect_sat = polarity ? any_one : any_zero;
        ASSERT_EQ(st, expect_sat ? sat::SolveStatus::kSat
                                 : sat::SolveStatus::kUnsat)
            << "cone root " << r << " polarity " << polarity;
        if (st == sat::SolveStatus::kSat) {
          // Replay the model through the simulator: it must reproduce the
          // asserted polarity.
          std::vector<std::uint8_t> pis(n_inputs);
          for (std::size_t i = 0; i < n_inputs; ++i) {
            const aig::Lit pl = aig::make_lit(mini.pis()[i], false);
            pis[i] = enc.encoded(pl) && s.model_value_lit(enc.lit(pl)) ? 1
                                                                       : 0;
          }
          aig::AigSimulator sim(mini);
          sim.step(pis);
          ASSERT_EQ(sim.output_values()[0] != 0, polarity)
              << "model replay diverged, cone root " << r;
          ++sat_models_replayed;
        } else {
          ++unsat_by_exhaustion;
        }
      }
    }
  }
  EXPECT_GT(cones_checked, 0u);
  EXPECT_GT(sat_models_replayed, 0u);
  std::printf("[cone property] %zu cones, %zu SAT models replayed, "
              "%zu UNSAT confirmed by exhaustion\n",
              cones_checked, sat_models_replayed, unsat_by_exhaustion);
}

// ---------------------------------------------------------------------------
// Equivalence oracle

TEST(SatOracle, SynthesisVariantsProvenEquivalentAcrossFamilies) {
  synth::SynthOptions variant;
  variant.merge_gate_trees = false;
  variant.fuse_inverters = false;
  const sat::EquivOracle oracle;
  for (const std::string& family : data::families()) {
    SCOPED_TRACE(family);
    const netlist::Netlist a = make_design(family, 1);
    const netlist::Netlist b = make_design(family, 1, variant);
    const sat::OracleResult res = oracle.check(a, b);
    EXPECT_EQ(res.verdict, sat::Verdict::kEquivalent) << res.detail;
  }
}

TEST(SatOracle, MutantProvenInequivalentWithConfirmedCex) {
  const netlist::Netlist golden = make_design("alu", 1);
  Rng rng(11);
  const auto muts = data::sample_mutations(golden, 4, rng);
  ASSERT_FALSE(muts.empty());
  const sat::EquivOracle oracle;
  std::size_t inequivalent = 0;
  for (std::size_t i = 0; i < muts.size(); ++i) {
    const netlist::Netlist mutant =
        data::apply_mutation(golden, muts[i], "__m" + std::to_string(i));
    const sat::OracleResult res = oracle.check(golden, mutant);
    if (res.verdict != sat::Verdict::kNotEquivalent) continue;
    ++inequivalent;
    EXPECT_TRUE(res.cex.confirmed)
        << "every SAT verdict must ship a sim-confirmed counterexample";
    EXPECT_FALSE(res.cex.frames.empty());
    EXPECT_FALSE(res.cex.mismatch_output.empty());
    // Second opinion from the BDD-based formal checker where it fits.
    const bdd::FormalResult formal =
        bdd::check_equivalence_formal(golden, mutant);
    if (formal.status != bdd::FormalResult::Status::kResourceLimit) {
      EXPECT_EQ(formal.status, bdd::FormalResult::Status::kNotEquivalent)
          << "oracle and BDD checker disagree on mutant " << i;
    }
  }
  EXPECT_GT(inequivalent, 0u);
}

TEST(SatOracle, InterfaceMismatchIsNotEquivalent) {
  const netlist::Netlist a = make_design("alu", 1);
  const netlist::Netlist b = make_design("crc", 1);
  const sat::EquivOracle oracle;
  const sat::OracleResult res = oracle.check(a, b);
  EXPECT_EQ(res.verdict, sat::Verdict::kNotEquivalent);
  EXPECT_FALSE(res.detail.empty());
}

TEST(SatOracle, ConflictBudgetExhaustionIsTypedUnknown) {
  // A mutated sequential design with a 0-conflict structural proof ruled
  // out: budget 0 forces kUnknown before any solving happens.
  const netlist::Netlist golden = make_design("crc", 1);
  Rng rng(3);
  const auto muts = data::sample_mutations(golden, 1, rng);
  ASSERT_FALSE(muts.empty());
  const netlist::Netlist mutant =
      data::apply_mutation(golden, muts[0], "__m0");
  sat::OracleConfig cfg;
  cfg.conflict_budget = 0;
  const sat::OracleResult res = sat::EquivOracle(cfg).check(golden, mutant);
  EXPECT_EQ(res.verdict, sat::Verdict::kUnknown);
  EXPECT_EQ(res.unknown_reason, sat::UnknownReason::kConflictBudget);
}

TEST(SatOracle, DepthBoundYieldsTypedUnknownThenDeeperSearchDecides) {
  // Find a mutant whose earliest counterexample needs >= 2 frames; at
  // max_frames below that depth the oracle must answer a typed
  // depth-bound UNKNOWN, and at full depth prove inequivalence.
  const netlist::Netlist golden = make_design("gray_counter", 1);
  Rng rng(5);
  const auto muts = data::sample_mutations(golden, 16, rng);
  const sat::EquivOracle deep;
  bool exercised = false;
  for (std::size_t i = 0; i < muts.size() && !exercised; ++i) {
    const netlist::Netlist mutant =
        data::apply_mutation(golden, muts[i], "__m" + std::to_string(i));
    const sat::OracleResult full = deep.check(golden, mutant);
    if (full.verdict != sat::Verdict::kNotEquivalent ||
        full.cex.frames.size() < 2) {
      continue;
    }
    sat::OracleConfig shallow;
    shallow.max_frames = 1;
    const sat::OracleResult res =
        sat::EquivOracle(shallow).check(golden, mutant);
    if (res.verdict == sat::Verdict::kNotEquivalent) {
      // The cut check can prove inequivalence without unrolling — that is
      // a stronger answer than UNKNOWN, not a failure; keep looking for a
      // mutant that genuinely needs depth.
      continue;
    }
    EXPECT_EQ(res.verdict, sat::Verdict::kUnknown);
    EXPECT_EQ(res.unknown_reason, sat::UnknownReason::kDepthBound);
    exercised = true;
  }
  EXPECT_TRUE(exercised)
      << "no sampled counter mutant needed >1 frame; widen the sample";
}

TEST(SatOracle, BitDeterministicAcrossRuns) {
  const netlist::Netlist a = make_design("error_logger", 1);
  synth::SynthOptions variant;
  variant.merge_gate_trees = false;
  const netlist::Netlist b = make_design("error_logger", 1, variant);
  const sat::EquivOracle oracle;
  const sat::OracleResult r1 = oracle.check(a, b);
  const sat::OracleResult r2 = oracle.check(a, b);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r1.detail, r2.detail);
  EXPECT_EQ(r1.stats.conflicts, r2.stats.conflicts);
  EXPECT_EQ(r1.stats.decisions, r2.stats.decisions);
  EXPECT_EQ(r1.stats.propagations, r2.stats.propagations);
  EXPECT_EQ(r1.cex.frames, r2.cex.frames);

  // Mutant path too (exercises cex extraction determinism).
  Rng rng(9);
  const auto muts = data::sample_mutations(a, 1, rng);
  ASSERT_FALSE(muts.empty());
  const netlist::Netlist mutant = data::apply_mutation(a, muts[0], "__m0");
  const sat::OracleResult m1 = oracle.check(a, mutant);
  const sat::OracleResult m2 = oracle.check(a, mutant);
  EXPECT_EQ(m1.verdict, m2.verdict);
  EXPECT_EQ(m1.stats.conflicts, m2.stats.conflicts);
  EXPECT_EQ(m1.cex.frames, m2.cex.frames);
  EXPECT_EQ(m1.cex.mismatch_output, m2.cex.mismatch_output);
}

TEST(SatOracle, RtlModuleOverloadMatchesItsOwnSynthesis) {
  data::DesignSpec spec;
  spec.family = "ctrl_fsm";
  spec.size_hint = 1;
  spec.seed = 2;
  spec.name = "fsm_rtl";
  const rtl::Module m = data::generate(spec);
  const netlist::Netlist nl =
      synth::synthesize(m, cell::standard_library());
  const sat::EquivOracle oracle;
  const sat::OracleResult res = oracle.check(m, nl);
  EXPECT_EQ(res.verdict, sat::Verdict::kEquivalent) << res.detail;
}

// ---------------------------------------------------------------------------
// Mutations

TEST(SatMutate, ApplyPreservesInterfaceAndChangesFunction) {
  const netlist::Netlist golden = make_design("alu", 1);
  const auto all = data::enumerate_mutations(golden);
  ASSERT_FALSE(all.empty());
  Rng rng(2);
  const auto muts = data::sample_mutations(golden, 6, rng);
  for (std::size_t i = 0; i < muts.size(); ++i) {
    const netlist::Netlist mutant =
        data::apply_mutation(golden, muts[i], "__x" + std::to_string(i));
    EXPECT_EQ(mutant.name(), golden.name() + "__x" + std::to_string(i));
    EXPECT_EQ(mutant.inputs().size(), golden.inputs().size());
    EXPECT_EQ(mutant.outputs().size(), golden.outputs().size());
    EXPECT_EQ(mutant.num_nodes(), golden.num_nodes());
  }
}

TEST(SatMutate, SamplingIsSeededAndWithoutReplacement) {
  const netlist::Netlist golden = make_design("crc", 1);
  Rng r1(17), r2(17), r3(18);
  const auto a = data::sample_mutations(golden, 8, r1);
  const auto b = data::sample_mutations(golden, 8, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
  const auto c = data::sample_mutations(golden, 8, r3);
  bool any_diff = a.size() != c.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].node != c[i].node || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(any_diff) << "different seeds should sample differently";
  // Without replacement: no duplicate (kind, node, detail) triples.
  std::vector<std::string> keys;
  for (const auto& m : a) {
    keys.push_back(std::to_string(static_cast<int>(m.kind)) + "|" + m.node +
                   "|" + m.detail);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

// ---------------------------------------------------------------------------
// Hard-negative miner

TEST(SatMine, MinesNegativesDeterministically) {
  const netlist::Netlist golden = make_design("alu", 1);
  sat::MinerConfig cfg;
  cfg.candidates = 8;
  cfg.seed = 4;
  const sat::MineReport r1 =
      sat::mine_hard_negatives(golden, sat::FepScorer{}, cfg);
  const sat::MineReport r2 =
      sat::mine_hard_negatives(golden, sat::FepScorer{}, cfg);
  EXPECT_GE(r1.negatives.size(), 1u);
  EXPECT_EQ(r1.candidates, 8u);
  EXPECT_EQ(r1.proven_inequivalent + r1.proven_equivalent + r1.unknown,
            r1.candidates);
  ASSERT_EQ(r1.negatives.size(), r2.negatives.size());
  for (std::size_t i = 0; i < r1.negatives.size(); ++i) {
    EXPECT_EQ(r1.negatives[i].name, r2.negatives[i].name);
    EXPECT_EQ(r1.negatives[i].conflicts, r2.negatives[i].conflicts);
    EXPECT_EQ(r1.negatives[i].verilog, r2.negatives[i].verilog);
    EXPECT_EQ(r1.negatives[i].cex.frames, r2.negatives[i].cex.frames);
  }
  EXPECT_EQ(r1.stats.conflicts, r2.stats.conflicts);
}

TEST(SatMine, ScorerFiltersToFooledNegativesOnly) {
  const netlist::Netlist golden = make_design("alu", 1);
  sat::MinerConfig cfg;
  cfg.candidates = 6;
  // A head that always scores high: every proven-inequivalent mutant
  // "fools" it and is kept.
  const sat::MineReport fooled = sat::mine_hard_negatives(
      golden, [](const netlist::Netlist&) { return 1.0f; }, cfg);
  EXPECT_EQ(fooled.negatives.size(), fooled.proven_inequivalent);
  EXPECT_EQ(fooled.fooled_head, fooled.proven_inequivalent);
  // A head that scores the golden high but every mutant low: nothing
  // fools it, nothing is mined.
  const std::string golden_name = golden.name();
  const sat::MineReport sharp = sat::mine_hard_negatives(
      golden,
      [&golden_name](const netlist::Netlist& nl) {
        return nl.name() == golden_name ? 1.0f : 0.0f;
      },
      cfg);
  EXPECT_EQ(sharp.negatives.size(), 0u);
  EXPECT_EQ(sharp.fooled_head, 0u);
}

TEST(SatMine, ExportIsByteIdenticalAcrossRuns) {
  const netlist::Netlist golden = make_design("crc", 1);
  sat::MinerConfig cfg;
  cfg.candidates = 5;
  const sat::MineReport rep =
      sat::mine_hard_negatives(golden, sat::FepScorer{}, cfg);
  ASSERT_GE(rep.negatives.size(), 1u);
  const std::string d1 = ::testing::TempDir() + "sat_mine_a";
  const std::string d2 = ::testing::TempDir() + "sat_mine_b";
  const std::size_t n1 = sat::export_mined(rep, d1);
  const std::size_t n2 = sat::export_mined(rep, d2);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(n1, rep.negatives.size() + 1);  // one .v each + mined.jsonl
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string j1 = slurp(d1 + "/mined.jsonl");
  const std::string j2 = slurp(d2 + "/mined.jsonl");
  EXPECT_EQ(j1, j2);
  EXPECT_FALSE(j1.empty());
  for (const auto& neg : rep.negatives) {
    EXPECT_EQ(slurp(d1 + "/" + neg.name + ".v"),
              slurp(d2 + "/" + neg.name + ".v"));
    // The jsonl must reference every exported file by name.
    EXPECT_NE(j1.find(neg.name), std::string::npos);
  }
}

}  // namespace
}  // namespace moss
