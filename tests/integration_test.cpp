// End-to-end integration tests exercising the umbrella header and the full
// pipeline: generation -> synthesis -> labeling -> LM fine-tune ->
// training -> evaluation, for both MOSS and the baseline.

#include <gtest/gtest.h>

#include "core_util/strings.hpp"
#include "moss.hpp"

namespace moss {
namespace {

struct Pipeline {
  lm::TextEncoder enc{{2048, 16, 77}};
  std::vector<data::LabeledCircuit> circuits;

  Pipeline() {
    data::DatasetConfig dcfg;
    dcfg.sim_cycles = 400;
    circuits = data::build_dataset(data::corpus_specs(6, 3, 1, 2),
                                   cell::standard_library(), dcfg);
    std::vector<std::string> corpus;
    for (const auto& lc : circuits) corpus.push_back(lc.module_text);
    lm::FineTuneConfig ftc;
    ftc.epochs = 1;
    ftc.max_pairs_per_epoch = 8000;
    Rng rng(1);
    lm::fine_tune(enc, corpus, ftc, rng);
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, DatasetLabelsConsistent) {
  for (const auto& lc : pipeline().circuits) {
    EXPECT_EQ(lc.toggle.size(), lc.netlist.num_nodes());
    EXPECT_EQ(lc.arrival.size(), lc.netlist.num_nodes());
    EXPECT_GT(lc.power_uw, 0.0);
    // Every synthesized netlist matches its RTL golden model.
    Rng rng(fnv1a64(lc.netlist.name()));
    const auto eq = sim::check_equivalence(lc.module, lc.netlist, 100, rng);
    EXPECT_TRUE(eq.equivalent) << lc.netlist.name() << ": "
                               << eq.first_mismatch;
  }
}

TEST(Integration, MossTrainsEndToEnd) {
  auto& p = pipeline();
  core::MossConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  core::MossModel model(cfg, cell::standard_library(), p.enc);
  std::vector<core::CircuitBatch> batches;
  for (const auto& lc : p.circuits) {
    batches.push_back(core::build_batch(lc, p.enc, cfg.features));
  }
  core::PretrainConfig pcfg;
  pcfg.epochs = 6;
  pcfg.lr = 3e-3f;
  const auto rep = core::pretrain(model, batches, pcfg);
  EXPECT_LT(rep.total.back(), rep.total.front());

  core::AlignConfig acfg;
  acfg.epochs = 10;
  acfg.batch_size = 4;
  acfg.lr = 3e-3f;
  Rng rng(2);
  const auto arep = core::align(model, batches, acfg, rng);
  EXPECT_LT(arep.rnc.back(), arep.rnc.front());

  for (std::size_t i = 0; i < batches.size(); ++i) {
    const auto acc = core::evaluate_tasks(model, batches[i], p.circuits[i]);
    EXPECT_GE(acc.atp, 0.0);
    EXPECT_LE(acc.atp, 1.0);
    EXPECT_GE(acc.trp, 0.0);
    EXPECT_LE(acc.trp, 1.0);
  }
  // Retrieval after alignment beats chance (1/6) on the training pool.
  EXPECT_GT(core::evaluate_fep(model, batches), 1.0 / 6.0);
}

TEST(Integration, BaselineTrainsEndToEnd) {
  auto& p = pipeline();
  baseline::DeepSeqConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  baseline::DeepSeqModel model(cfg);
  std::vector<baseline::AigBatch> abs_;
  std::vector<core::CircuitBatch> batches;
  for (const auto& lc : p.circuits) {
    abs_.push_back(baseline::build_aig_batch(lc, 9, 400));
    batches.push_back(abs_.back().batch);
  }
  core::PretrainConfig pcfg;
  pcfg.epochs = 6;
  pcfg.lr = 3e-3f;
  const auto rep = core::pretrain_model(model, batches, pcfg);
  EXPECT_LT(rep.total.back(), rep.total.front());
  for (std::size_t i = 0; i < abs_.size(); ++i) {
    const auto acc =
        baseline::evaluate_baseline(model, abs_[i], p.circuits[i]);
    EXPECT_GE(acc.trp, 0.0);
    EXPECT_LE(acc.trp, 1.0);
  }
}

TEST(Integration, VariantConfigsAllRun) {
  auto& p = pipeline();
  for (const auto& cfg0 :
       {core::MossConfig::full(), core::MossConfig::without_alignment(),
        core::MossConfig::without_adaptive_agg(),
        core::MossConfig::without_features()}) {
    core::MossConfig cfg = cfg0;
    cfg.hidden = 12;
    cfg.rounds = 1;
    core::MossModel model(cfg, cell::standard_library(), p.enc);
    const auto batch =
        core::build_batch(p.circuits[0], p.enc, cfg.features);
    const auto h = model.node_embeddings(batch);
    EXPECT_EQ(h.rows(), batch.graph.num_nodes);
  }
}

}  // namespace
}  // namespace moss
