#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "power/power.hpp"
#include "rtl/parser.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace moss::power {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

TEST(Power, LeakageOnlyWhenIdle) {
  Netlist nl(standard_library(), "idle");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("INV", "g", {a});
  nl.add_output("y", g);
  nl.finalize();
  std::vector<double> rates(nl.num_nodes(), 0.0);
  const PowerReport rep = analyze_power(nl, rates);
  EXPECT_DOUBLE_EQ(rep.dynamic_uw, 0.0);
  EXPECT_GT(rep.leakage_uw, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_uw, rep.leakage_uw);
}

TEST(Power, DynamicScalesWithToggle) {
  Netlist nl(standard_library(), "dyn");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("INV", "g", {a});
  nl.add_output("y", g);
  nl.finalize();
  std::vector<double> slow(nl.num_nodes(), 0.0), fast(nl.num_nodes(), 0.0);
  slow[static_cast<std::size_t>(g)] = 0.1;
  fast[static_cast<std::size_t>(g)] = 0.9;
  const auto p_slow = analyze_power(nl, slow);
  const auto p_fast = analyze_power(nl, fast);
  EXPECT_NEAR(p_fast.dynamic_uw / p_slow.dynamic_uw, 9.0, 1e-6);
}

TEST(Power, FlopsBurnClockPower) {
  // A flop with zero data activity still consumes clock-pin power.
  Netlist nl(standard_library(), "clk");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_cell("DFF", "q", {a});
  nl.add_output("y", q);
  nl.finalize();
  std::vector<double> rates(nl.num_nodes(), 0.0);
  const auto rep = analyze_power(nl, rates);
  EXPECT_GT(rep.dynamic_uw, 0.0);
}

TEST(Power, FrequencyScaling) {
  Netlist nl(standard_library(), "freq");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("XOR2", "g", {a, a});
  nl.add_output("y", g);
  nl.finalize();
  std::vector<double> rates(nl.num_nodes(), 0.5);
  PowerOptions p1;
  p1.clock_ghz = 1.0;
  PowerOptions p2;
  p2.clock_ghz = 2.0;
  const auto r1 = analyze_power(nl, rates, p1);
  const auto r2 = analyze_power(nl, rates, p2);
  EXPECT_NEAR(r2.dynamic_uw / r1.dynamic_uw, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(r1.leakage_uw, r2.leakage_uw);
}

TEST(Power, WrongRateVectorRejected) {
  Netlist nl(standard_library(), "bad");
  nl.add_input("a");
  nl.add_output("y", nl.find("a"));
  nl.finalize();
  std::vector<double> rates(3, 0.0);  // wrong size
  EXPECT_THROW(analyze_power(nl, rates), Error);
}

TEST(Power, EndToEndSynthesizedCircuit) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module top (input clk, input rst, input [7:0] a, output [7:0] y);
      reg [7:0] r;
      always @(posedge clk) begin
        if (rst) r <= 8'd0;
        else r <= r + a;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  Rng rng(5);
  const auto act = sim::random_activity(nl, 2000, rng);
  const auto rep = analyze_power(nl, act.toggle);
  EXPECT_GT(rep.total_uw, 0.0);
  EXPECT_GT(rep.dynamic_uw, rep.leakage_uw);  // active adder
  // Per-cell powers sum to the total.
  double sum = 0;
  for (const double p : rep.cell_power_uw) sum += p;
  EXPECT_NEAR(sum, rep.total_uw, 1e-9);
}

TEST(Power, MoreActivityMorePower) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module top (input clk, input rst, input [7:0] a, output [7:0] y);
      reg [7:0] r;
      always @(posedge clk) begin
        if (rst) r <= 8'd0;
        else r <= a ^ r;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  Rng r1(7), r2(7);
  const auto quiet = sim::random_activity(nl, 2000, r1, 0.02);
  const auto busy = sim::random_activity(nl, 2000, r2, 0.5);
  EXPECT_LT(analyze_power(nl, quiet.toggle).dynamic_uw,
            analyze_power(nl, busy.toggle).dynamic_uw);
}

}  // namespace
}  // namespace moss::power
