#include <gtest/gtest.h>

#include "clustering/clustering.hpp"
#include "core/features.hpp"

namespace moss::core {
namespace {

using cell::standard_library;

const lm::TextEncoder& enc() {
  static lm::TextEncoder e({2048, 16, 9});
  return e;
}

data::LabeledCircuit labeled(const char* family, int size = 1) {
  data::DesignSpec s{family, size, 11, ""};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 300;
  return data::label_circuit(s, standard_library(), cfg);
}

TEST(ClusterCellTypes, CoversAllTypesAndIsBounded) {
  const auto labels = cluster_cell_types(standard_library(), enc(), 6);
  EXPECT_EQ(labels.size(), standard_library().size());
  const std::size_t g = clustering::num_clusters(labels);
  EXPECT_GE(g, 2u);
  EXPECT_LE(g, 6u);
  for (const int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, static_cast<int>(g));
  }
}

TEST(ClusterCellTypes, FlopsClusterTogether) {
  const auto labels = cluster_cell_types(standard_library(), enc(), 6);
  const auto& lib = standard_library();
  const int dff = labels[static_cast<std::size_t>(lib.find("DFF"))];
  EXPECT_EQ(labels[static_cast<std::size_t>(lib.find("DFFR"))], dff);
  EXPECT_EQ(labels[static_cast<std::size_t>(lib.find("DFFE"))], dff);
  // Flops separate from inverters.
  EXPECT_NE(labels[static_cast<std::size_t>(lib.find("INV"))], dff);
}

TEST(FeatureDim, VariantsDiffer) {
  FeatureConfig with_lm;
  FeatureConfig without;
  without.lm_features = false;
  EXPECT_EQ(feature_dim(standard_library(), enc(), with_lm),
            structural_feature_dim() + 2 * enc().dim());
  EXPECT_EQ(feature_dim(standard_library(), enc(), without),
            structural_feature_dim());
  FeatureConfig onehot = without;
  onehot.type_onehot = true;
  EXPECT_EQ(feature_dim(standard_library(), enc(), onehot),
            structural_feature_dim() + standard_library().size());
}

TEST(NumAggregators, AdaptiveVsUniform) {
  FeatureConfig adaptive;
  FeatureConfig uniform;
  uniform.adaptive_agg = false;
  EXPECT_GT(num_aggregators(standard_library(), enc(), adaptive), 2u);
  EXPECT_EQ(num_aggregators(standard_library(), enc(), uniform), 2u);
}

TEST(BuildBatch, ShapesConsistent) {
  const auto lc = labeled("gray_counter", 2);
  FeatureConfig cfg;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  EXPECT_EQ(b.graph.num_nodes, lc.netlist.num_nodes());
  EXPECT_EQ(b.graph.features.rows(), lc.netlist.num_nodes());
  EXPECT_EQ(b.graph.features.cols(),
            feature_dim(standard_library(), enc(), cfg));
  EXPECT_EQ(b.cell_rows.size(), lc.netlist.num_cells());
  EXPECT_EQ(b.flop_rows.size(), lc.netlist.flops().size());
  EXPECT_EQ(b.toggle.size(), b.cell_rows.size());
  EXPECT_EQ(b.arrival_rows.size(), b.cell_rows.size());
  EXPECT_EQ(b.arrival_norm.size(), b.arrival_rows.size());
  EXPECT_EQ(b.flop_arrival_norm.size(), b.flop_rows.size());
  EXPECT_EQ(b.reg_prompt_emb.rows(), b.flop_rows.size());
  EXPECT_GT(b.graph.forward_steps.size(), 0u);
  EXPECT_EQ(b.graph.turnaround_steps.size(), 1u);
  EXPECT_FALSE(b.module_text.empty());
}

TEST(BuildBatch, DffRowsGetRegisterPromptEmbedding) {
  const auto lc = labeled("gray_counter", 1);
  FeatureConfig cfg;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  // Every flop must have a nonzero prompt embedding row.
  for (std::size_t fi = 0; fi < b.flop_rows.size(); ++fi) {
    float s = 0;
    for (std::size_t c = 0; c < enc().dim(); ++c) {
      s += std::abs(b.reg_prompt_emb.at(fi, c));
    }
    EXPECT_GT(s, 0.0f) << "flop " << fi;
  }
  // And the DFF feature rows carry it too (last block nonzero).
  const std::size_t F = b.graph.features.cols();
  for (const int row : b.flop_rows) {
    float s = 0;
    for (std::size_t c = F - enc().dim(); c < F; ++c) {
      s += std::abs(b.graph.features.at(static_cast<std::size_t>(row), c));
    }
    EXPECT_GT(s, 0.0f);
  }
}

TEST(BuildBatch, NonFlopCellsHaveZeroRegisterBlock) {
  const auto lc = labeled("alu", 1);
  FeatureConfig cfg;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  const std::size_t F = b.graph.features.cols();
  for (const int row : b.cell_rows) {
    const auto id = static_cast<netlist::NodeId>(row);
    if (lc.netlist.is_flop(id)) continue;
    float s = 0;
    for (std::size_t c = F - enc().dim(); c < F; ++c) {
      s += std::abs(b.graph.features.at(static_cast<std::size_t>(row), c));
    }
    EXPECT_FLOAT_EQ(s, 0.0f);
    break;  // one representative is enough
  }
}

TEST(BuildBatch, OneHotVariant) {
  const auto lc = labeled("alu", 1);
  FeatureConfig cfg;
  cfg.lm_features = false;
  cfg.type_onehot = true;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  // Each cell row has exactly one 1 in the one-hot block.
  for (const int row : b.cell_rows) {
    float s = 0;
    for (std::size_t c = structural_feature_dim();
         c < b.graph.features.cols(); ++c) {
      s += b.graph.features.at(static_cast<std::size_t>(row), c);
    }
    EXPECT_FLOAT_EQ(s, 1.0f);
  }
}

TEST(BuildBatch, ArrivalNormalization) {
  const auto lc = labeled("pipeline_reg", 1);
  FeatureConfig cfg;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  for (std::size_t i = 0; i < b.flop_rows.size(); ++i) {
    EXPECT_NEAR(b.flop_arrival_norm[i] * kArrivalScale,
                lc.flop_arrival[i], 1e-3);
  }
}

TEST(BuildBatch, UniformVariantHasTwoClusters) {
  const auto lc = labeled("gray_counter", 1);
  FeatureConfig cfg;
  cfg.adaptive_agg = false;
  const CircuitBatch b = build_batch(lc, enc(), cfg);
  EXPECT_EQ(b.graph.num_clusters, 2u);
}

}  // namespace
}  // namespace moss::core
