#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

namespace moss::core {
namespace {

using cell::standard_library;

const lm::TextEncoder& enc() {
  static lm::TextEncoder e({2048, 16, 13});
  return e;
}

struct Fixture {
  std::vector<data::LabeledCircuit> circuits;
  std::vector<CircuitBatch> batches;
};

Fixture make_fixture(const FeatureConfig& fcfg, int n = 3) {
  Fixture f;
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 300;
  const auto specs = data::corpus_specs(static_cast<std::size_t>(n), 21, 1, 1);
  for (const auto& s : specs) {
    f.circuits.push_back(data::label_circuit(s, standard_library(), dcfg));
    f.batches.push_back(build_batch(f.circuits.back(), enc(), fcfg));
  }
  return f;
}

MossConfig small_config() {
  MossConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  return cfg;
}

TEST(MossConfig, VariantFlags) {
  EXPECT_TRUE(MossConfig::full().alignment);
  EXPECT_FALSE(MossConfig::without_alignment().alignment);
  EXPECT_TRUE(MossConfig::without_alignment().features.adaptive_agg);
  EXPECT_FALSE(MossConfig::without_adaptive_agg().features.adaptive_agg);
  EXPECT_TRUE(MossConfig::without_adaptive_agg().features.lm_features);
  EXPECT_FALSE(MossConfig::without_features().features.lm_features);
}

TEST(MossModel, ForwardShapes) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 1);
  const auto& b = f.batches[0];
  const auto h = model.node_embeddings(b);
  EXPECT_EQ(h.rows(), b.graph.num_nodes);
  EXPECT_EQ(h.cols(), cfg.hidden);
  const auto pred = model.predict_local(b, h);
  EXPECT_EQ(pred.one_prob.rows(), b.cell_rows.size());
  EXPECT_EQ(pred.toggle.rows(), b.cell_rows.size());
  EXPECT_EQ(pred.arrival.rows(), b.arrival_rows.size());
  const auto flop_at = model.predict_arrival(b, h, b.flop_rows);
  EXPECT_EQ(flop_at.rows(), b.flop_rows.size());
  for (std::size_t i = 0; i < pred.toggle.rows(); ++i) {
    EXPECT_GT(pred.toggle.at(i, 0), 0.0f);
    EXPECT_LT(pred.toggle.at(i, 0), 1.0f);
    EXPECT_GE(pred.arrival.defined() ? 0.0f : 0.0f, 0.0f);
  }
  const auto n_e = model.netlist_embedding(b, h);
  EXPECT_EQ(n_e.rows(), 1u);
  EXPECT_EQ(n_e.cols(), enc().dim());
  float norm = 0;
  for (const float v : n_e.data()) norm += v * v;
  EXPECT_NEAR(norm, 1.0f, 1e-3f);
}

TEST(MossModel, RnmLogitsAllPairs) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  tensor::Tensor r = tensor::Tensor::full(3, enc().dim(), 0.1f);
  tensor::Tensor n = tensor::Tensor::full(2, enc().dim(), 0.2f);
  const auto logits = model.rnm_logits(r, n);
  EXPECT_EQ(logits.rows(), 6u);
  EXPECT_EQ(logits.cols(), 1u);
}

TEST(Accuracy, FromErrors) {
  EXPECT_DOUBLE_EQ(accuracy_from_errors({1.0}, {1.0}, 0.1), 1.0);
  EXPECT_NEAR(accuracy_from_errors({0.9}, {1.0}, 0.1), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(accuracy_from_errors({10.0}, {1.0}, 0.1), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(accuracy_from_errors({}, {}, 0.1), 1.0);
}

TEST(Trainer, PretrainLossDecreases) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 3);
  PretrainConfig pcfg;
  pcfg.epochs = 8;
  pcfg.lr = 3e-3f;
  const auto rep = pretrain(model, f.batches, pcfg);
  ASSERT_EQ(rep.total.size(), 8u);
  EXPECT_LT(rep.total.back(), rep.total.front());
  EXPECT_LT(rep.toggle.back(), rep.toggle.front());
  EXPECT_LT(rep.arrival.back(), rep.arrival.front());
}

TEST(Trainer, PretrainImprovesTaskAccuracy) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 3);
  PretrainConfig pcfg;
  pcfg.epochs = 60;
  pcfg.lr = 3e-3f;
  pretrain(model, f.batches, pcfg);
  // Fitting three small circuits must reach solid train accuracy.
  const TaskAccuracy after = evaluate_tasks(model, f.batches[0],
                                            f.circuits[0]);
  EXPECT_GT(after.atp, 0.5);
  EXPECT_GT(after.trp, 0.5);
  EXPECT_GT(after.pp, 0.6);
}

TEST(Trainer, AlignLossDecreasesAndFepImproves) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 4);
  AlignConfig acfg;
  acfg.epochs = 30;
  acfg.batch_size = 4;
  acfg.lr = 5e-3f;
  Rng rng(3);
  const double fep_before = evaluate_fep(model, f.batches);
  const auto rep = align(model, f.batches, acfg, rng);
  ASSERT_EQ(rep.total.size(), 30u);
  EXPECT_LT(rep.total.back(), rep.total.front());
  EXPECT_LT(rep.rnc.back(), rep.rnc.front());
  const double fep_after = evaluate_fep(model, f.batches);
  EXPECT_GE(fep_after, fep_before);
  EXPECT_GT(fep_after, 0.7);  // 4 candidates, trained: should be easy
}

TEST(Trainer, AlignNoOpWithoutAlignment) {
  const MossConfig cfg = MossConfig::without_alignment();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 2);
  AlignConfig acfg;
  Rng rng(4);
  const auto rep = align(model, f.batches, acfg, rng);
  EXPECT_TRUE(rep.total.empty());
}

TEST(Evaluate, TaskAccuracyInRange) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 1);
  const TaskAccuracy acc = evaluate_tasks(model, f.batches[0], f.circuits[0]);
  EXPECT_GE(acc.atp, 0.0);
  EXPECT_LE(acc.atp, 1.0);
  EXPECT_GE(acc.trp, 0.0);
  EXPECT_LE(acc.trp, 1.0);
  EXPECT_GE(acc.pp, 0.0);
  EXPECT_LE(acc.pp, 1.0);
}

TEST(Evaluate, FepUntrainedIsWeak) {
  const MossConfig cfg = small_config();
  MossModel model(cfg, standard_library(), enc());
  Fixture f = make_fixture(cfg.features, 4);
  const double fep = evaluate_fep(model, f.batches);
  EXPECT_GE(fep, 0.0);
  EXPECT_LE(fep, 1.0);
}

TEST(DynamicWeights, BalancesObservedTasks) {
  // Two tasks with very different loss magnitudes: once both are observed,
  // the weights must be inverse to the loss EMAs (Eq. 2), not uniform.
  detail::DynamicWeights dw(2);
  for (int i = 0; i < 5; ++i) {
    dw.observe(0, 10.0);
    dw.observe(1, 0.1);
  }
  const auto w = dw.weights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[1], w[0]);
  EXPECT_NEAR(w[0] + w[1], 2.0f, 1e-4f);
}

TEST(DynamicWeights, AbsentTaskDoesNotBlockWarmup) {
  // A model variant without an arrival head reports that task's loss as
  // exactly 0 forever. The EMA of that task then never becomes positive —
  // which used to keep *all* weights stuck at uniform for the whole run.
  // The zero task must be treated as observed-but-absent: excluded from the
  // inverse-EMA balance, with the live tasks still balanced against each
  // other.
  detail::DynamicWeights dw(3);
  for (int i = 0; i < 5; ++i) {
    dw.observe(0, 4.0);
    dw.observe(1, 0.5);
    dw.observe(2, 0.0);  // absent head
  }
  const auto w = dw.weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_GT(w[1], w[0]) << "live tasks must be balanced, not uniform";
  EXPECT_EQ(w[2], 1.0f) << "absent task keeps a neutral weight";
  EXPECT_NEAR(w[0] + w[1], 2.0f, 1e-4f);
}

TEST(DynamicWeights, UniformDuringWarmup) {
  detail::DynamicWeights dw(3);
  dw.observe(0, 2.0);  // tasks 1 and 2 not yet observed
  const auto w = dw.weights();
  for (const float v : w) EXPECT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace moss::core
