#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core_util/check.hpp"
#include "tensor/nn.hpp"
#include "tensor/tensor.hpp"

namespace moss::tensor {
namespace {

/// Finite-difference gradient check: builds the graph twice per element.
/// `make_loss` must construct a scalar loss from the given leaf tensors.
void gradcheck(std::vector<Tensor> leaves,
               const std::function<Tensor(const std::vector<Tensor>&)>&
                   make_loss,
               float tol = 2e-2f) {
  // Analytic gradients.
  Tensor loss = make_loss(leaves);
  loss.backward();
  std::vector<std::vector<float>> analytic;
  for (Tensor& l : leaves) analytic.push_back(l.grad());

  const float h = 1e-3f;
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    for (std::size_t i = 0; i < leaves[li].size(); ++i) {
      const float orig = leaves[li].data()[i];
      leaves[li].data()[i] = orig + h;
      const float up = make_loss(leaves).item();
      leaves[li].data()[i] = orig - h;
      const float dn = make_loss(leaves).item();
      leaves[li].data()[i] = orig;
      const float numeric = (up - dn) / (2 * h);
      EXPECT_NEAR(analytic[li][i], numeric,
                  tol * std::max(1.0f, std::abs(numeric)))
          << "leaf " << li << " element " << i;
    }
  }
}

Tensor leaf(std::vector<float> v, std::size_t r, std::size_t c) {
  return Tensor::from(std::move(v), r, c, /*requires_grad=*/true);
}

TEST(Tensor, Construction) {
  const Tensor z = Tensor::zeros(2, 3);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  EXPECT_EQ(z.size(), 6u);
  const Tensor f = Tensor::full(1, 2, 3.5f);
  EXPECT_FLOAT_EQ(f.at(0, 1), 3.5f);
  EXPECT_THROW(Tensor::from({1, 2}, 2, 2), Error);
  EXPECT_THROW(z.at(2, 0), Error);
}

TEST(Tensor, ForwardArithmetic) {
  const Tensor a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const Tensor b = Tensor::from({5, 6, 7, 8}, 2, 2);
  const Tensor s = a + b;
  EXPECT_FLOAT_EQ(s.at(1, 1), 12.0f);
  const Tensor d = b - a;
  EXPECT_FLOAT_EQ(d.at(0, 0), 4.0f);
  const Tensor m = a * b;
  EXPECT_FLOAT_EQ(m.at(1, 0), 21.0f);
}

TEST(Tensor, MatmulForward) {
  const Tensor a = Tensor::from({1, 2, 3, 4, 5, 6}, 2, 3);
  const Tensor b = Tensor::from({7, 8, 9, 10, 11, 12}, 3, 2);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  EXPECT_THROW(matmul(a, a), Error);
}

TEST(Tensor, TransposeForward) {
  const Tensor a = Tensor::from({1, 2, 3, 4, 5, 6}, 2, 3);
  const Tensor t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Grad, AddSubMul) {
  gradcheck({leaf({1, -2, 3, 0.5f}, 2, 2), leaf({2, 2, -1, 4}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all((l[0] + l[1]) * l[0] - l[1]);
            });
}

TEST(Grad, RowBroadcastAdd) {
  gradcheck({leaf({1, -2, 3, 0.5f, 2, 0}, 2, 3), leaf({0.5f, -1, 2}, 1, 3)},
            [](const std::vector<Tensor>& l) {
              return sum_all(tanh_t(add(l[0], l[1])));
            });
}

TEST(Grad, Matmul) {
  gradcheck({leaf({1, -2, 3, 0.5f, 2, -1}, 2, 3),
             leaf({0.3f, -0.7f, 1.2f, 0.4f, -0.1f, 0.9f}, 3, 2)},
            [](const std::vector<Tensor>& l) {
              return mean_all(matmul(l[0], l[1]));
            });
}

TEST(Grad, ChainedMatmulTranspose) {
  gradcheck({leaf({0.5f, -1, 2, 1.5f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(matmul(l[0], transpose(l[0])));
            });
}

TEST(Grad, Activations) {
  gradcheck({leaf({0.5f, -1.5f, 2.0f, -0.3f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(relu(l[0]) + sigmoid(l[0]) * tanh_t(l[0]));
            });
}

TEST(Grad, Softplus) {
  gradcheck({leaf({0.5f, -1.5f, 2.0f, -0.3f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(softplus(l[0]));
            });
}

TEST(Grad, LeakyRelu) {
  gradcheck({leaf({0.5f, -1.5f, 2.0f, -0.3f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(leaky_relu(l[0], 0.1f));
            });
}

TEST(Grad, ExpAndScale) {
  gradcheck({leaf({0.5f, -1.5f, 0.2f, -0.3f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(scale(exp_t(l[0]), 0.5f));
            });
}

TEST(Tensor, ConcatColsForward) {
  const Tensor a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const Tensor b = Tensor::from({5, 6}, 2, 1);
  const Tensor c = concat_cols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
}

TEST(Tensor, GatherRowsBounds) {
  const Tensor a = Tensor::from({1, 2, 3, 4}, 2, 2);
  EXPECT_THROW(gather_rows(a, {0, 2}), Error);
  EXPECT_THROW(gather_rows(a, {-1}), Error);
}

TEST(Tensor, SegmentSumBounds) {
  const Tensor a = Tensor::from({1, 2, 3, 4}, 2, 2);
  EXPECT_THROW(segment_sum(a, {0, 5}, 2), Error);
  EXPECT_THROW(segment_sum(a, {0}, 2), Error);  // one id per row
}

TEST(Grad, SoftmaxRows) {
  gradcheck({leaf({1, 2, 3, -1, 0, 1}, 2, 3)},
            [](const std::vector<Tensor>& l) {
              const Tensor p = softmax_rows(l[0]);
              return sum_all(p * p);  // nontrivial downstream
            });
}

TEST(Grad, ConcatGatherSegment) {
  gradcheck(
      {leaf({1, 2, 3, 4, 5, 6}, 3, 2), leaf({-1, 0.5f, 2, 1, 0, -2}, 3, 2)},
      [](const std::vector<Tensor>& l) {
        const Tensor cat = concat_cols(l[0], l[1]);          // 3x4
        const Tensor g = gather_rows(cat, {2, 0, 1, 2});      // 4x4
        const Tensor s = segment_sum(g, {0, 1, 1, 0}, 2);     // 2x4
        return mean_all(s * s);
      });
}

TEST(Grad, MulColvec) {
  gradcheck({leaf({1, 2, 3, 4, 5, 6}, 3, 2), leaf({0.5f, -1, 2}, 3, 1)},
            [](const std::vector<Tensor>& l) {
              return sum_all(mul_colvec(l[0], l[1]));
            });
}

TEST(Grad, ScatterRows) {
  gradcheck({leaf({1, 2, 3, 4, 5, 6}, 3, 2), leaf({-1, 0.5f, 2, 1}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              const Tensor s = scatter_rows(l[0], {2, 0}, l[1]);
              return sum_all(s * s);
            });
}

TEST(Tensor, ScatterRowsForward) {
  const Tensor base = Tensor::from({1, 2, 3, 4, 5, 6}, 3, 2);
  const Tensor rows = Tensor::from({9, 9, 8, 8}, 2, 2);
  const Tensor out = scatter_rows(base, {2, 0}, rows);
  EXPECT_FLOAT_EQ(out.at(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 3.0f);  // untouched
  EXPECT_FLOAT_EQ(out.at(2, 1), 9.0f);
  EXPECT_THROW(scatter_rows(base, {0, 0}, rows), Error);  // duplicate
}

TEST(Grad, ConcatRows) {
  gradcheck({leaf({1, 2}, 1, 2), leaf({3, 4, 5, 6}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              return sum_all(tanh_t(concat_rows({l[0], l[1]})));
            });
}

TEST(Grad, SegmentSoftmax) {
  gradcheck({leaf({1, 2, 3, -1, 0}, 5, 1)},
            [](const std::vector<Tensor>& l) {
              const Tensor a = segment_softmax(l[0], {0, 0, 1, 1, 1}, 2);
              return sum_all(a * a);
            });
}

TEST(Grad, L2NormalizeRows) {
  gradcheck({leaf({1, 2, 3, -1, 0.5f, 2}, 2, 3)},
            [](const std::vector<Tensor>& l) {
              const Tensor n = l2_normalize_rows(l[0]);
              return sum_all(n * n + n);
            });
}

TEST(Grad, MeanRowsScaleBy) {
  gradcheck({leaf({1, 2, 3, 4, 5, 6}, 3, 2), leaf({0.7f}, 1, 1)},
            [](const std::vector<Tensor>& l) {
              return sum_all(scale_by(mean_rows(l[0]), l[1]));
            });
}

TEST(Grad, SmoothL1BothRegimes) {
  // deltas straddle the |d|=1 boundary
  gradcheck({leaf({0.2f, 3.0f, -2.5f, -0.4f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              const Tensor target = Tensor::from({0, 0, 0, 0}, 2, 2);
              return smooth_l1_loss(l[0], target);
            });
}

TEST(Grad, MseLoss) {
  gradcheck({leaf({0.2f, 1.0f, -2.5f, -0.4f}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              const Tensor target = Tensor::from({1, 0, -1, 2}, 2, 2);
              return mse_loss(l[0], target);
            });
}

TEST(Grad, CrossEntropyRows) {
  gradcheck({leaf({1, 2, 0.5f, -1, 0, 1.5f}, 2, 3)},
            [](const std::vector<Tensor>& l) {
              return cross_entropy_rows(l[0], {2, 0});
            });
}

TEST(Grad, BceWithLogits) {
  gradcheck({leaf({0.5f, -2, 3, 0}, 2, 2)},
            [](const std::vector<Tensor>& l) {
              const Tensor t = Tensor::from({1, 0, 1, 0}, 2, 2);
              return bce_with_logits(l[0], t);
            });
}

TEST(Grad, ReusedNodeAccumulates) {
  // f = sum(a*a + a*a): node 'a*a' reused -> gradient must double.
  Tensor a = leaf({2.0f}, 1, 1);
  const Tensor sq = a * a;
  Tensor loss = sum_all(sq + sq);
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 8.0f, 1e-4f);  // d/da 2a² = 4a
}

TEST(Grad, DetachBlocksGradient) {
  Tensor a = leaf({3.0f}, 1, 1);
  Tensor loss = sum_all(a.detach() * a);
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 3.0f, 1e-5f);  // only the non-detached path
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor a = leaf({1, 2}, 1, 2);
  Tensor b = a + a;
  EXPECT_THROW(b.backward(), Error);
}

TEST(Nn, LinearShapesAndGrad) {
  Rng rng(1);
  ParameterSet params;
  Linear lin(3, 2, rng, params, "lin");
  EXPECT_EQ(params.size(), 2u);  // w and b
  const Tensor x = Tensor::from({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor y = lin(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 2u);
  Tensor loss = mean_all(y * y);
  loss.backward();
  for (Tensor& p : params.tensors()) {
    float norm = 0;
    for (const float g : p.grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(Nn, AdamConvergesOnQuadratic) {
  // minimize ||w - c||² -> w should approach c.
  Rng rng(2);
  ParameterSet params;
  Tensor w = params.add("w", Tensor::randn(1, 4, rng, 1.0f, true));
  const Tensor c = Tensor::from({1, -2, 0.5f, 3}, 1, 4);
  Adam opt(params, 0.05f);
  for (int step = 0; step < 400; ++step) {
    params.zero_grad();
    Tensor loss = mse_loss(w, c);
    loss.backward();
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.data()[i], c.data()[i], 0.05f) << i;
  }
}

TEST(Nn, AdamWithClipStillConverges) {
  Rng rng(3);
  ParameterSet params;
  Tensor w = params.add("w", Tensor::full(1, 1, 50.0f, true));
  const Tensor c = Tensor::scalar(0.0f);
  Adam opt(params, 0.5f);
  for (int step = 0; step < 800; ++step) {
    params.zero_grad();
    Tensor loss = mse_loss(w, c);
    loss.backward();
    opt.step(1.0f);
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.2f);
}

TEST(Nn, MlpLearnsXor) {
  Rng rng(7);
  ParameterSet params;
  Mlp mlp(2, 8, 1, rng, params, "mlp");
  const Tensor x = Tensor::from({0, 0, 0, 1, 1, 0, 1, 1}, 4, 2);
  const Tensor y = Tensor::from({0, 1, 1, 0}, 4, 1);
  Adam opt(params, 0.02f);
  float final_loss = 1e9f;
  for (int step = 0; step < 1500; ++step) {
    params.zero_grad();
    Tensor loss = bce_with_logits(mlp(x), y);
    final_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(final_loss, 0.1f);
  const Tensor pred = sigmoid(mlp(x));
  EXPECT_LT(pred.at(0, 0), 0.5f);
  EXPECT_GT(pred.at(1, 0), 0.5f);
  EXPECT_GT(pred.at(2, 0), 0.5f);
  EXPECT_LT(pred.at(3, 0), 0.5f);
}

TEST(Nn, ParameterSetCountsScalars) {
  Rng rng(4);
  ParameterSet params;
  Linear lin(4, 3, rng, params, "l");
  EXPECT_EQ(params.num_scalars(), 4u * 3u + 3u);
}

}  // namespace
}  // namespace moss::tensor
