#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "aig/balance.hpp"
#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "rtl/parser.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace moss::aig {
namespace {

TEST(Aig, LiteralHelpers) {
  const Lit l = make_lit(5, true);
  EXPECT_EQ(lit_node(l), 5u);
  EXPECT_TRUE(lit_compl(l));
  EXPECT_EQ(lit_not(lit_not(l)), l);
  EXPECT_EQ(kLitTrue, lit_not(kLitFalse));
}

TEST(Aig, AndFoldingRules) {
  Aig g;
  const Lit a = make_lit(g.add_pi(), false);
  const Lit b = make_lit(g.add_pi(), false);
  EXPECT_EQ(g.and2(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.and2(a, kLitTrue), a);
  EXPECT_EQ(g.and2(a, a), a);
  EXPECT_EQ(g.and2(a, lit_not(a)), kLitFalse);
  const Lit ab = g.and2(a, b);
  EXPECT_EQ(g.and2(b, a), ab);  // strashed, commutative
  EXPECT_EQ(g.num_ands(), 1u);
}

TEST(Aig, XorTruth) {
  Aig g;
  const Lit a = make_lit(g.add_pi(), false);
  const Lit b = make_lit(g.add_pi(), false);
  g.add_po(g.xor2(a, b));
  AigSimulator sim(g);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.step({static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv)});
      EXPECT_EQ(sim.output_values()[0], av ^ bv);
    }
  }
}

TEST(Aig, MuxTruth) {
  Aig g;
  const Lit s = make_lit(g.add_pi(), false);
  const Lit t = make_lit(g.add_pi(), false);
  const Lit f = make_lit(g.add_pi(), false);
  g.add_po(g.mux(s, t, f));
  AigSimulator sim(g);
  for (int sv = 0; sv < 2; ++sv) {
    for (int tv = 0; tv < 2; ++tv) {
      for (int fv = 0; fv < 2; ++fv) {
        sim.step({static_cast<std::uint8_t>(sv),
                  static_cast<std::uint8_t>(tv),
                  static_cast<std::uint8_t>(fv)});
        EXPECT_EQ(sim.output_values()[0], sv ? tv : fv);
      }
    }
  }
}

TEST(Aig, LatchDelaysOneCycle) {
  Aig g;
  const Lit d = make_lit(g.add_pi(), false);
  const std::uint32_t q = g.add_latch();
  g.set_latch_next(q, d);
  g.add_po(make_lit(q, false));
  AigSimulator sim(g);
  sim.step({1});
  EXPECT_EQ(sim.output_values()[0], 0);
  sim.step({0});
  EXPECT_EQ(sim.output_values()[0], 1);
}

TEST(Aig, LevelsIncreaseThroughAnds) {
  Aig g;
  const Lit a = make_lit(g.add_pi(), false);
  const Lit b = make_lit(g.add_pi(), false);
  const Lit c = make_lit(g.add_pi(), false);
  const Lit ab = g.and2(a, b);
  const Lit abc = g.and2(ab, c);
  const auto lvl = g.levels();
  EXPECT_EQ(lvl[lit_node(a)], 0);
  EXPECT_EQ(lvl[lit_node(ab)], 1);
  EXPECT_EQ(lvl[lit_node(abc)], 2);
}

/// Netlist -> AIG conversion must be cycle-exact against the gate-level sim.
void expect_aig_equivalent(const char* src, int cycles = 300) {
  const rtl::Module m = rtl::parse_verilog(src);
  const netlist::Netlist nl =
      synth::synthesize(m, cell::standard_library());
  const AigConversion conv = from_netlist(nl);

  sim::Simulator gate(nl);
  AigSimulator asim(conv.aig);
  Rng rng(fnv1a64(src));
  std::vector<std::uint8_t> pis(nl.inputs().size());
  for (int cyc = 0; cyc < cycles; ++cyc) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    gate.step(pis);
    asim.step(pis);
    // Compare every netlist node's value with its AIG literal.
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      ASSERT_EQ(gate.value(static_cast<netlist::NodeId>(i)),
                asim.value(conv.node_lit[i]))
          << "cycle " << cyc << " node " << nl.node(static_cast<netlist::NodeId>(i)).name;
    }
  }
}

TEST(AigConversion, CounterEquivalent) {
  expect_aig_equivalent(R"(
    module c (input clk, input rst, input en, output [5:0] q);
      reg [5:0] r;
      always @(posedge clk) begin
        if (rst) r <= 6'd0;
        else if (en) r <= r + 6'd1;
      end
      assign q = r;
    endmodule)");
}

TEST(AigConversion, ComplexCellsEquivalent) {
  expect_aig_equivalent(R"(
    module x (input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
      assign y = ~((a & b) | (c ^ a)) + (b | c);
    endmodule)");
}

TEST(AigConversion, ResetToOnesEquivalent) {
  expect_aig_equivalent(R"(
    module r1 (input clk, input rst, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd13;
        else r <= d;
      end
      assign q = r;
    endmodule)");
}

TEST(Balance, ReducesChainDepth) {
  // A linear AND chain of 8 leaves: depth 7 -> balanced depth 3.
  Aig g;
  std::vector<Lit> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(make_lit(g.add_pi(), false));
  Lit acc = xs[0];
  for (int i = 1; i < 8; ++i) acc = g.and2(acc, xs[i]);
  g.add_po(acc);
  EXPECT_EQ(depth(g), 7);
  const RebuiltAig bal = balance(g);
  EXPECT_EQ(depth(bal.aig), 3);
}

TEST(Balance, PreservesFunction) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module b (input clk, input rst, input [5:0] a, input [5:0] c,
              output [5:0] y, output z);
      reg [5:0] r;
      always @(posedge clk) begin
        if (rst) r <= 6'd0;
        else r <= (a & c) + (r ^ a);
      end
      assign y = r;
      assign z = &a | ^c;
    endmodule)");
  const auto nl = synth::synthesize(m, cell::standard_library());
  const AigConversion conv = from_netlist(nl);
  const RebuiltAig bal = balance(conv.aig);
  EXPECT_LE(depth(bal.aig), depth(conv.aig));

  AigSimulator s1(conv.aig), s2(bal.aig);
  Rng rng(17);
  std::vector<std::uint8_t> pis(conv.aig.pis().size());
  for (int cyc = 0; cyc < 200; ++cyc) {
    for (auto& v : pis) v = rng.bernoulli(0.5) ? 1 : 0;
    s1.step(pis);
    s2.step(pis);
    ASSERT_EQ(s1.output_values(), s2.output_values()) << "cycle " << cyc;
  }
}

TEST(Balance, MappingCoversAllNodes) {
  Aig g;
  const Lit a = make_lit(g.add_pi(), false);
  const Lit b = make_lit(g.add_pi(), false);
  const Lit f = g.xor2(a, b);
  g.add_po(f);
  const RebuiltAig bal = balance(g);
  ASSERT_EQ(bal.old_to_new.size(), g.num_nodes());
  // Every old node's image computes the same function (spot check via sim).
  AigSimulator s1(g), s2(bal.aig);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      s1.step({static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv)});
      s2.step({static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv)});
      for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
        if (g.node(i).kind == AigKind::kConst0) continue;
        ASSERT_EQ(s1.value(make_lit(i, false)),
                  s2.value(bal.old_to_new[i]));
      }
    }
  }
}

TEST(AigConversion, CountsAreSane) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module s (input clk, input rst, input [7:0] a, output [7:0] y);
      reg [7:0] r;
      always @(posedge clk) begin
        if (rst) r <= 8'd0;
        else r <= r + a;
      end
      assign y = r;
    endmodule)");
  const auto nl = synth::synthesize(m, cell::standard_library());
  const auto conv = from_netlist(nl);
  EXPECT_EQ(conv.aig.latches().size(), nl.flops().size());
  EXPECT_EQ(conv.aig.pis().size(), nl.inputs().size());
  EXPECT_EQ(conv.aig.pos().size(), nl.outputs().size());
  // Complex standard cells shatter into multiple ANDs: the AIG is larger
  // than the mapped netlist's combinational part.
  EXPECT_GT(conv.aig.num_ands(), nl.num_comb_cells());
}

}  // namespace
}  // namespace moss::aig
