#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "rtl/parser.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace moss::sim {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

TEST(StuckAt, ForcedValuePropagates) {
  Netlist nl(standard_library(), "f");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_cell("AND2", "g", {a, b});
  nl.add_output("y", g);
  nl.finalize();
  Simulator sim(nl);
  sim.set_stuck_at(a, 1);  // a stuck-at-1
  sim.step({0, 1});        // would be 0 without the fault
  EXPECT_EQ(sim.output_values()[0], 1);
  sim.clear_stuck_at();
  sim.step({0, 1});
  EXPECT_EQ(sim.output_values()[0], 0);
}

TEST(StuckAt, RejectsPrimaryOutput) {
  Netlist nl(standard_library(), "po");
  const NodeId a = nl.add_input("a");
  const NodeId y = nl.add_output("y", a);
  nl.finalize();
  Simulator sim(nl);
  EXPECT_THROW(sim.set_stuck_at(y, 1), Error);
}

TEST(FaultEnum, UniverseSizeAndPolarity) {
  Netlist nl(standard_library(), "u");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("INV", "g", {a});
  nl.add_output("y", g);
  nl.finalize();
  const auto faults = enumerate_faults(nl);
  // a and g, both polarities; PO excluded.
  EXPECT_EQ(faults.size(), 4u);
}

TEST(FaultSim, InverterFullyTestable) {
  Netlist nl(standard_library(), "inv");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("INV", "g", {a});
  nl.add_output("y", g);
  nl.finalize();
  Rng rng(1);
  const auto campaign =
      simulate_faults(nl, enumerate_faults(nl), 32, rng);
  EXPECT_DOUBLE_EQ(campaign.coverage, 1.0);  // every stuck-at detectable
  for (const auto& r : campaign.results) EXPECT_TRUE(r.detected);
}

TEST(FaultSim, RedundantLogicIsUndetectable) {
  // y = a | (a & b): the AND is redundant; its stuck-at-0 can't be seen.
  Netlist nl(standard_library(), "red");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_cell("AND2", "g1", {a, b});
  const NodeId g2 = nl.add_cell("OR2", "g2", {a, g1});
  nl.add_output("y", g2);
  nl.finalize();
  Rng rng(2);
  const auto campaign = simulate_faults(
      nl, {Fault{g1, false}, Fault{g1, true}}, 64, rng);
  EXPECT_FALSE(campaign.results[0].detected);  // stuck-at-0: masked by OR
  EXPECT_TRUE(campaign.results[1].detected);   // stuck-at-1: y=1 when a=0
}

TEST(FaultSim, SequentialFaultNeedsPropagationCycles) {
  // Fault before a flop needs a clock edge to reach the output.
  Netlist nl(standard_library(), "seq");
  const NodeId d = nl.add_input("d");
  const NodeId q = nl.add_cell("DFF", "q", {d});
  nl.add_output("y", q);
  nl.finalize();
  Rng rng(3);
  const auto campaign = simulate_faults(nl, {Fault{d, true}}, 32, rng);
  ASSERT_TRUE(campaign.results[0].detected);
  EXPECT_GE(campaign.results[0].first_detect_cycle, 1u);
}

TEST(FaultSim, SynthesizedDesignCoverageIsHigh) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module c (input clk, input rst, input [3:0] a, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd0; else r <= r + a;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  Rng rng(4);
  const auto campaign =
      simulate_faults(nl, enumerate_faults(nl), 128, rng);
  // Random patterns on a small adder reach most of the logic.
  EXPECT_GT(campaign.coverage, 0.8);
  EXPECT_EQ(campaign.results.size(), enumerate_faults(nl).size());
}

TEST(FaultSim, DeterministicForSeed) {
  Netlist nl(standard_library(), "det");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_cell("BUF", "g", {a});
  nl.add_output("y", g);
  nl.finalize();
  Rng r1(5), r2(5);
  const auto c1 = simulate_faults(nl, enumerate_faults(nl), 16, r1);
  const auto c2 = simulate_faults(nl, enumerate_faults(nl), 16, r2);
  EXPECT_EQ(c1.detected, c2.detected);
}

}  // namespace
}  // namespace moss::sim
