#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "tensor/tensor.hpp"

// End-to-end determinism contract of the parallel execution layer: training
// with threads=N must produce bit-identical parameters, reports and labels
// to threads=1 (see DESIGN.md "Threading model").

namespace moss::core {
namespace {

using cell::standard_library;

const lm::TextEncoder& enc() {
  static lm::TextEncoder e({2048, 16, 13});
  return e;
}

std::vector<CircuitBatch> make_batches(const FeatureConfig& fcfg, int n) {
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 200;
  std::vector<CircuitBatch> batches;
  const auto specs = data::corpus_specs(static_cast<std::size_t>(n), 33, 1, 1);
  for (const auto& s : specs) {
    batches.push_back(build_batch(
        data::label_circuit(s, standard_library(), dcfg), enc(), fcfg));
  }
  return batches;
}

MossConfig small_config() {
  MossConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  return cfg;
}

void expect_params_identical(MossModel& a, MossModel& b) {
  auto pa = a.params().tensors();
  auto pb = b.params().tensors();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].data().size(), pb[i].data().size());
    for (std::size_t k = 0; k < pa[i].data().size(); ++k) {
      ASSERT_EQ(pa[i].data()[k], pb[i].data()[k])
          << "param " << i << " element " << k << " diverged";
    }
  }
}

TEST(ParallelTraining, GradSandboxCollectsLeafGrads) {
  using tensor::Tensor;
  Tensor w = Tensor::from({2.0f, -1.0f}, 1, 2, /*requires_grad=*/true);
  tensor::GradSandbox sandbox;
  Tensor loss = tensor::sum_all(tensor::mul(w, w));
  loss.backward();
  // Gradient went to the sandbox, not the shared buffer.
  const std::vector<float>* buf = sandbox.find(w);
  ASSERT_NE(buf, nullptr);
  ASSERT_EQ(buf->size(), 2u);
  EXPECT_FLOAT_EQ((*buf)[0], 4.0f);
  EXPECT_FLOAT_EQ((*buf)[1], -2.0f);

  auto collected = sandbox.take();
  std::vector<Tensor> params{w};
  tensor::accumulate_grads(params, collected, 0.5f);
  EXPECT_FLOAT_EQ(w.grad()[0], 2.0f);  // 0.5 * 4
  EXPECT_FLOAT_EQ(w.grad()[1], -1.0f);
}

TEST(ParallelTraining, PretrainBitIdenticalAcrossThreadCounts) {
  const MossConfig mcfg = small_config();
  std::vector<CircuitBatch> batches = make_batches(mcfg.features, 6);

  PretrainConfig serial;
  serial.epochs = 3;
  serial.threads = 1;
  serial.grad_accum = 4;
  PretrainConfig threaded = serial;
  threaded.threads = 4;

  MossModel m1(mcfg, standard_library(), enc());
  MossModel m4(mcfg, standard_library(), enc());
  const PretrainReport r1 = pretrain(m1, batches, serial);
  const PretrainReport r4 = pretrain(m4, batches, threaded);

  EXPECT_EQ(r1.total, r4.total);
  EXPECT_EQ(r1.prob, r4.prob);
  EXPECT_EQ(r1.toggle, r4.toggle);
  EXPECT_EQ(r1.arrival, r4.arrival);
  expect_params_identical(m1, m4);
}

TEST(ParallelTraining, AlignBitIdenticalAcrossThreadCounts) {
  const MossConfig mcfg = small_config();
  std::vector<CircuitBatch> batches = make_batches(mcfg.features, 5);

  AlignConfig serial;
  serial.epochs = 3;
  serial.batch_size = 2;
  serial.threads = 1;
  serial.grad_accum = 3;
  AlignConfig threaded = serial;
  threaded.threads = 4;

  MossModel m1(mcfg, standard_library(), enc());
  MossModel m4(mcfg, standard_library(), enc());
  Rng rng1(99), rng4(99);
  const AlignReport r1 = align(m1, batches, serial, rng1);
  const AlignReport r4 = align(m4, batches, threaded, rng4);

  EXPECT_EQ(r1.total, r4.total);
  EXPECT_EQ(r1.rnc, r4.rnc);
  EXPECT_EQ(r1.rnm, r4.rnm);
  EXPECT_EQ(r1.rrndm, r4.rrndm);
  EXPECT_EQ(r1.circuits_seen, r4.circuits_seen);
  ASSERT_FALSE(r1.circuits_seen.empty());
  for (const std::size_t seen : r1.circuits_seen) {
    EXPECT_EQ(seen, batches.size());  // tail minibatch trained too
  }
  expect_params_identical(m1, m4);
}

TEST(ParallelTraining, GradAccumOneMatchesClassicLoop) {
  // grad_accum=1 groups hold a single circuit, so the parallel reduction
  // path must reproduce the plain serial SGD loop exactly even when a pool
  // is attached.
  const MossConfig mcfg = small_config();
  std::vector<CircuitBatch> batches = make_batches(mcfg.features, 4);

  PretrainConfig classic;
  classic.epochs = 2;
  PretrainConfig pooled = classic;
  pooled.threads = 4;  // pool attached, but groups of one

  MossModel m1(mcfg, standard_library(), enc());
  MossModel m4(mcfg, standard_library(), enc());
  const PretrainReport r1 = pretrain(m1, batches, classic);
  const PretrainReport r4 = pretrain(m4, batches, pooled);
  EXPECT_EQ(r1.total, r4.total);
  expect_params_identical(m1, m4);
}

TEST(ParallelData, BuildDatasetBitIdenticalAcrossThreadCounts) {
  const auto specs = data::corpus_specs(5, 17, 1, 1);
  data::DatasetConfig serial;
  serial.sim_cycles = 150;
  data::DatasetConfig threaded = serial;
  threaded.threads = 4;

  const auto d1 = data::build_dataset(specs, standard_library(), serial);
  const auto d4 = data::build_dataset(specs, standard_library(), threaded);
  ASSERT_EQ(d1.size(), d4.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].toggle, d4[i].toggle);
    EXPECT_EQ(d1[i].one_prob, d4[i].one_prob);
    EXPECT_EQ(d1[i].arrival, d4[i].arrival);
    EXPECT_EQ(d1[i].power_uw, d4[i].power_uw);
    EXPECT_EQ(d1[i].module_text, d4[i].module_text);
  }
}

}  // namespace
}  // namespace moss::core
