// Resilience-layer test suite: unit tests for the pure policy objects
// (retry backoff, retry budget, admission control, circuit breaker, health
// roll-up), deterministic engine-level breaker/degraded-mode scenarios, and
// a seeded multi-threaded chaos soak that arms probabilistic faults at
// every serve fault site and asserts the service degrades predictably —
// no crash, every failure typed, bounded error rate, and bit-identical
// results for non-degraded successes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/resilience.hpp"

namespace moss {
namespace {

using serve::AdmissionConfig;
using serve::AdmissionController;
using serve::BreakerConfig;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::EmbeddingCache;
using serve::HealthReport;
using serve::HealthState;
using serve::InferenceEngine;
using serve::ModelRegistry;
using serve::Request;
using serve::RequestKind;
using serve::Response;
using serve::RetryBudget;
using serve::RetryConfig;
using tensor::Tensor;

/// Guard that disarms every fault site on scope exit, so a failing
/// EXPECT_THROW cannot leak an armed fault into later tests.
struct FaultGuard {
  ~FaultGuard() { testing::disarm_all_faults(); }
};

ContextError transient_error() {
  try {
    ErrorContext ctx;
    ctx.add("reason", "flaky");
    ctx.transient();
    ctx.fail("transient test failure");
  } catch (const ContextError& e) {
    return e;
  }
  return ContextError("unreachable");
}

// ---------------------------------------------------------------------------
// retry policy

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndCapped) {
  RetryConfig cfg;
  cfg.base_backoff_ms = 2.0;
  cfg.max_backoff_ms = 10.0;
  cfg.jitter = 0.5;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double a = serve::backoff_ms(cfg, 42, attempt);
    const double b = serve::backoff_ms(cfg, 42, attempt);
    EXPECT_EQ(a, b) << "same (seed, token, attempt) must replay identically";
    const double nominal = std::min(2.0 * std::ldexp(1.0, attempt - 1), 10.0);
    EXPECT_LE(a, nominal);
    EXPECT_GE(a, nominal * (1.0 - cfg.jitter));
  }
  // Different tokens get decorrelated jitter.
  EXPECT_NE(serve::backoff_ms(cfg, 1, 1), serve::backoff_ms(cfg, 2, 1));
}

TEST(RetryPolicy, BudgetDrainsUnderFailureAndRefillsOnSuccess) {
  RetryBudget budget(/*cap=*/2.0, /*earn_per_success=*/0.5);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend()) << "bucket empty: retries must stop";
  budget.on_success();
  EXPECT_FALSE(budget.try_spend()) << "0.5 tokens is not a whole retry";
  budget.on_success();
  EXPECT_TRUE(budget.try_spend());
}

TEST(RetryPolicy, WithRetryRecoversFromTransientFailures) {
  RetryConfig cfg;
  cfg.max_attempts = 3;
  cfg.base_backoff_ms = 0.0;  // no sleeping in unit tests
  int calls = 0;
  std::uint64_t retries = 0;
  const int result = serve::with_retry(
      cfg, nullptr, /*token=*/7,
      [&] {
        if (++calls < 3) throw transient_error();
        return 42;
      },
      &retries);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryPolicy, WithRetryNeverRetriesPermanentFailures) {
  RetryConfig cfg;
  cfg.max_attempts = 5;
  cfg.base_backoff_ms = 0.0;
  int calls = 0;
  EXPECT_THROW(serve::with_retry(cfg, nullptr, 1,
                                 [&]() -> int {
                                   ++calls;
                                   ErrorContext ctx;
                                   ctx.add("reason", "bad_request");
                                   ctx.fail("permanent");
                                   return 0;
                                 }),
               ContextError);
  EXPECT_EQ(calls, 1) << "permanent failures must not be retried";
}

TEST(RetryPolicy, WithRetryStopsWhenBudgetIsExhausted) {
  RetryConfig cfg;
  cfg.max_attempts = 10;
  cfg.base_backoff_ms = 0.0;
  RetryBudget budget(/*cap=*/1.0, /*earn_per_success=*/0.0);
  int calls = 0;
  EXPECT_THROW(serve::with_retry(cfg, &budget, 1,
                                 [&]() -> int {
                                   ++calls;
                                   throw transient_error();
                                 }),
               ContextError);
  EXPECT_EQ(calls, 2) << "one budgeted retry, then the failure propagates";
}

// ---------------------------------------------------------------------------
// admission control

TEST(Admission, ShedsOnlyLowPriorityKindsAboveTheQueueThreshold) {
  AdmissionConfig cfg;
  cfg.shed_queue_fraction = 0.5;
  AdmissionController adm(cfg);
  using D = AdmissionController::Decision;
  // High-priority kinds are never shed, even at full queue.
  EXPECT_EQ(adm.admit(RequestKind::kAtp, 10, 10, 0.0), D::kAdmit);
  EXPECT_EQ(adm.admit(RequestKind::kTrpPp, 10, 10, 0.0), D::kAdmit);
  // Low-priority kinds shed at/above the threshold, admit below it.
  EXPECT_EQ(adm.admit(RequestKind::kEmbed, 5, 10, 0.0), D::kShed);
  EXPECT_EQ(adm.admit(RequestKind::kFepRank, 5, 10, 0.0), D::kShed);
  EXPECT_EQ(adm.admit(RequestKind::kEmbed, 4, 10, 0.0), D::kAdmit);
}

TEST(Admission, LatencyTriggerShedsWhenP95ExceedsLimit) {
  AdmissionConfig cfg;
  cfg.shed_queue_fraction = 1.0;  // queue trigger effectively off
  cfg.shed_p95_us = 100.0;
  AdmissionController adm(cfg);
  using D = AdmissionController::Decision;
  EXPECT_EQ(adm.admit(RequestKind::kEmbed, 0, 10, 200.0), D::kShed);
  EXPECT_EQ(adm.admit(RequestKind::kEmbed, 0, 10, 50.0), D::kAdmit);
  EXPECT_EQ(adm.admit(RequestKind::kAtp, 0, 10, 200.0), D::kAdmit);
}

TEST(Admission, DisabledControllerAdmitsEverything) {
  AdmissionConfig cfg;
  cfg.enabled = false;
  AdmissionController adm(cfg);
  EXPECT_EQ(adm.admit(RequestKind::kEmbed, 10, 10, 1e9),
            AdmissionController::Decision::kAdmit);
}

// ---------------------------------------------------------------------------
// circuit breaker

TEST(Breaker, FullLifecycleClosedOpenHalfOpenClosed) {
  BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_ms = 10;
  CircuitBreaker br(cfg);
  EXPECT_TRUE(br.allow());
  br.record(/*ok=*/false, /*transient=*/true);
  EXPECT_EQ(br.state(), BreakerState::kClosed) << "below threshold";
  br.record(false, true);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.open_count(), 1u);
  EXPECT_FALSE(br.allow()) << "open breaker refuses traffic in cooldown";

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bool probe = false;
  EXPECT_TRUE(br.allow(&probe)) << "cooldown elapsed: half-open probe";
  EXPECT_TRUE(probe);
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(br.allow()) << "only one probe slot configured";
  br.record(/*ok=*/true, false);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.close_count(), 1u);
  EXPECT_TRUE(br.allow());
}

TEST(Breaker, FailedProbeReopensWithFreshCooldown) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 10;
  CircuitBreaker br(cfg);
  br.record(false, true);
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bool probe = false;
  ASSERT_TRUE(br.allow(&probe));
  ASSERT_TRUE(probe);
  br.record(false, true);  // probe failed
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.open_count(), 2u);
  EXPECT_FALSE(br.allow()) << "fresh cooldown after the failed probe";
}

TEST(Breaker, PermanentProbeFailureDoesNotWedgeHalfOpen) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 10;
  CircuitBreaker br(cfg);
  br.record(false, true);
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bool probe = false;
  ASSERT_TRUE(br.allow(&probe));
  ASSERT_TRUE(probe);
  // The probe hit a client-fault error (e.g. bad_request): inconclusive.
  br.record(/*ok=*/false, /*transient=*/false, /*probe=*/true);
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  probe = false;
  EXPECT_TRUE(br.allow(&probe))
      << "probe slot must be handed back immediately, not wedged";
  EXPECT_TRUE(probe);
  br.record(true, false);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(Breaker, LostProbeOutcomeReArmsAfterCooldown) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 10;
  CircuitBreaker br(cfg);
  br.record(false, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bool probe = false;
  ASSERT_TRUE(br.allow(&probe));
  ASSERT_TRUE(probe);
  // The probe's outcome never comes back (report lost to a hot-swap race).
  EXPECT_FALSE(br.allow()) << "probe out, within cooldown: still refused";
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe = false;
  EXPECT_TRUE(br.allow(&probe)) << "half-open re-arms after a cooldown";
  EXPECT_TRUE(probe);
  br.record(true, false);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(Breaker, PermanentFailuresDoNotTrip) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  CircuitBreaker br(cfg);
  for (int i = 0; i < 10; ++i) br.record(false, /*transient=*/false);
  EXPECT_EQ(br.state(), BreakerState::kClosed)
      << "client-fault errors must not open the breaker";
}

TEST(Breaker, SuccessResetsTheConsecutiveFailureCount) {
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker br(cfg);
  br.record(false, true);
  br.record(false, true);
  br.record(true, false);
  br.record(false, true);
  br.record(false, true);
  EXPECT_EQ(br.state(), BreakerState::kClosed)
      << "failures interleaved with successes are not consecutive";
}

// ---------------------------------------------------------------------------
// health roll-up

TEST(Health, RollUpOrdersDownOverloadedDegradedOk) {
  AdmissionConfig adm;
  adm.shed_queue_fraction = 0.75;
  HealthReport r;
  r.queue_capacity = 10;
  EXPECT_EQ(serve::roll_up_health(r, adm), HealthState::kDown)
      << "no models registered";
  r.models = 2;
  EXPECT_EQ(serve::roll_up_health(r, adm), HealthState::kOk);
  r.breakers_open = 1;
  EXPECT_EQ(serve::roll_up_health(r, adm), HealthState::kDegraded);
  r.queue_depth = 8;  // 80% >= 75%
  EXPECT_EQ(serve::roll_up_health(r, adm), HealthState::kOverloaded)
      << "overload dominates degraded";
  r.models_unservable = 2;
  EXPECT_EQ(serve::roll_up_health(r, adm), HealthState::kDown)
      << "every model unservable dominates everything";
  EXPECT_NE(std::string(serve::to_string(HealthState::kDegraded)),
            std::string(serve::to_string(HealthState::kDown)));
}

// ---------------------------------------------------------------------------
// shared tiny session (mirrors serve_test's ServeWorld; built once)

struct ServeWorld {
  core::WorkflowConfig cfg;
  std::vector<std::shared_ptr<const data::LabeledCircuit>> lcs;
  std::shared_ptr<const serve::MossSession> session;
  std::vector<std::shared_ptr<const core::CircuitBatch>> batches;
};

const ServeWorld& world() {
  static const ServeWorld* w = [] {
    auto* sw = new ServeWorld();
    sw->cfg.model.hidden = 8;
    sw->cfg.model.rounds = 1;
    sw->cfg.dataset.sim_cycles = 120;
    sw->cfg.encoder = {512, 8, 3};
    sw->cfg.fine_tune.epochs = 1;
    sw->cfg.fine_tune.max_pairs_per_epoch = 2000;
    const auto& lib = cell::standard_library();
    const std::vector<data::DesignSpec> specs{{"alu", 1, 31, "chaos_alu"},
                                              {"crc", 1, 32, "chaos_crc"}};
    std::vector<std::string> corpus;
    for (const auto& spec : specs) {
      sw->lcs.push_back(std::make_shared<data::LabeledCircuit>(
          data::label_circuit(spec, lib, sw->cfg.dataset)));
      corpus.push_back(sw->lcs.back()->module_text);
    }
    sw->session = serve::MossSession::load(sw->cfg, corpus, /*ckpt_path=*/"");
    for (const auto& lc : sw->lcs) {
      sw->batches.push_back(
          std::make_shared<core::CircuitBatch>(sw->session->build(*lc)));
    }
    return sw;
  }();
  return *w;
}

Request atp_request(const ServeWorld& w, std::size_t i) {
  Request rq;
  rq.kind = RequestKind::kAtp;
  rq.batch = w.batches[i % w.batches.size()];
  return rq;
}

Request embed_request(const ServeWorld& w, std::size_t i) {
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[i % w.batches.size()];
  return rq;
}

// ---------------------------------------------------------------------------
// deterministic engine scenarios

TEST(ServeResilience, BreakerOpensAndServesStaleWhenAllowed) {
  const ServeWorld& w = world();
  const FaultGuard guard;
  ModelRegistry reg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_ms = 60000;  // stays open for the whole test
  reg.set_breaker_config(bcfg);
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  serve::EngineConfig ecfg;
  ecfg.allow_stale = true;
  InferenceEngine eng(reg, &cache, ecfg);
  eng.register_pool("pool", w.batches);

  // Warm the cache (and last_good) fault-free.
  const Response warm_embed = eng.call(embed_request(w, 0));
  ASSERT_FALSE(warm_embed.degraded);
  Request rank;
  rank.kind = RequestKind::kFepRank;
  rank.pool = "pool";
  rank.rtl_text = w.lcs[0]->module_text;
  const Response warm_rank = eng.call(rank);
  ASSERT_FALSE(warm_rank.degraded);

  // Every forward now fails: two ATP failures trip the breaker.
  testing::arm_fault_prob("serve.session.forward", 1.0, /*seed=*/1);
  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(eng.call(atp_request(w, 0)), testing::InjectedFault);
  }
  EXPECT_EQ(reg.breaker_state("default"), BreakerState::kOpen);

  // High-priority traffic fails typed breaker_open (no fallback session).
  try {
    eng.call(atp_request(w, 0));
    FAIL() << "ATP with an open breaker and no fallback must throw";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "breaker_open");
    EXPECT_TRUE(e.transient());
  }

  // EMBED and RANK are answered from the stale cache, marked degraded,
  // bit-identical to the warm (same-session) responses.
  const Response stale_embed = eng.call(embed_request(w, 0));
  EXPECT_TRUE(stale_embed.degraded);
  EXPECT_EQ(stale_embed.embedding, warm_embed.embedding);
  EXPECT_EQ(stale_embed.rtl_embedding, warm_embed.rtl_embedding);
  const Response stale_rank = eng.call(rank);
  EXPECT_TRUE(stale_rank.degraded);
  ASSERT_EQ(stale_rank.ranking.size(), warm_rank.ranking.size());
  for (std::size_t i = 0; i < stale_rank.ranking.size(); ++i) {
    EXPECT_EQ(stale_rank.ranking[i].index, warm_rank.ranking[i].index);
    EXPECT_EQ(stale_rank.ranking[i].score, warm_rank.ranking[i].score);
  }
  EXPECT_GE(eng.metrics().degraded_count(), 2u);

  // One open breaker, no fallback -> the single model is unservable: DOWN.
  EXPECT_EQ(eng.health().state, HealthState::kDown);

  // The protocol marks degraded responses explicitly.
  serve::ProtocolConfig pcfg;
  pcfg.retry.max_attempts = 1;
  auto lc0 = w.lcs[0];
  pcfg.load_design = [lc0](const std::string&) { return lc0; };
  serve::ProtocolHandler handler(eng, pcfg);
  const std::string resp = handler.handle_line("EMBED chaos_alu");
  EXPECT_EQ(resp.rfind("OK EMBED", 0), 0u) << resp;
  EXPECT_NE(resp.find(" degraded=1"), std::string::npos) << resp;
  const std::string health = handler.handle_line("HEALTH");
  EXPECT_EQ(health.rfind("OK HEALTH state=down", 0), 0u) << health;
}

TEST(ServeResilience, OpenBreakerFallsBackToLastKnownGoodSession) {
  const ServeWorld& w = world();
  const FaultGuard guard;
  ModelRegistry reg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_ms = 60000;
  reg.set_breaker_config(bcfg);
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});

  // Session A serves successfully -> becomes last-known-good (warm cache).
  const Response warm = eng.call(embed_request(w, 0));
  ASSERT_FALSE(warm.degraded);
  ASSERT_EQ(warm.session_uid, w.session->uid());

  // Hot-swap to session B (same model object, fresh uid -> cold cache).
  const auto session_b =
      serve::MossSession::adopt(w.session->model(), w.session->encoder());
  reg.install("default", session_b);

  // B's forwards all fail; trip its breaker.
  testing::arm_fault_prob("serve.session.forward", 1.0, /*seed=*/1);
  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(eng.call(atp_request(w, 0)), testing::InjectedFault);
  }
  ASSERT_EQ(reg.breaker_state("default"), BreakerState::kOpen);

  // Requests now route to last-known-good A; its warm cache sidesteps the
  // armed forward fault, and the response is marked degraded.
  const Response fb = eng.call(embed_request(w, 0));
  EXPECT_TRUE(fb.degraded);
  EXPECT_EQ(fb.session_uid, w.session->uid()) << "served by fallback A";
  EXPECT_EQ(fb.embedding, warm.embedding);

  // One open breaker with a distinct fallback: DEGRADED, not DOWN.
  EXPECT_EQ(eng.health().state, HealthState::kDegraded);
}

TEST(ServeResilience, BrokenFallbackIsDemotedAfterConsecutiveFailures) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_ms = 60000;  // stays open for the whole test
  reg.set_breaker_config(bcfg);
  reg.install("default", w.session);

  // A serves ok -> last-known-good; hot-swap to B and trip B's breaker.
  reg.report("default", w.session->uid(), /*ok=*/true);
  const auto session_b =
      serve::MossSession::adopt(w.session->model(), w.session->encoder());
  reg.install("default", session_b);
  for (int i = 0; i < bcfg.failure_threshold; ++i) {
    reg.report("default", session_b->uid(), /*ok=*/false, /*transient=*/true);
  }
  ASSERT_EQ(reg.breaker_state("default"), BreakerState::kOpen);
  ModelRegistry::Acquired acq = reg.acquire("default");
  ASSERT_TRUE(acq.fallback);
  ASSERT_EQ(acq.session->uid(), w.session->uid());

  // The fallback itself fails transiently, over and over: after
  // failure_threshold consecutive failures it must stop being offered.
  for (int i = 0; i < bcfg.failure_threshold; ++i) {
    reg.report("default", w.session->uid(), /*ok=*/false, /*transient=*/true);
  }
  try {
    reg.acquire("default");
    FAIL() << "demoted fallback must not be served again";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "breaker_open");
    EXPECT_TRUE(e.transient());
  }
  EXPECT_EQ(reg.breaker_stats().unservable, 1u);

  // A fallback success between failures resets the demotion counter.
  reg.install("default", session_b);
  reg.report("default", session_b->uid(), /*ok=*/true);
  const auto session_c =
      serve::MossSession::adopt(w.session->model(), w.session->encoder());
  reg.install("default", session_c);
  for (int i = 0; i < bcfg.failure_threshold; ++i) {
    reg.report("default", session_c->uid(), /*ok=*/false, /*transient=*/true);
  }
  reg.report("default", session_b->uid(), /*ok=*/false, /*transient=*/true);
  reg.report("default", session_b->uid(), /*ok=*/true);
  reg.report("default", session_b->uid(), /*ok=*/false, /*transient=*/true);
  EXPECT_TRUE(reg.acquire("default").fallback)
      << "non-consecutive fallback failures must not demote";
}

TEST(ServeResilience, ShedPathStaleServeCountsAsDegraded) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  // Warm the shared cache through a healthy engine first.
  Response warm;
  {
    InferenceEngine healthy(reg, &cache, {});
    warm = healthy.call(embed_request(w, 0));
    ASSERT_FALSE(warm.degraded);
  }
  // A second engine over the same cache sheds all low-priority traffic;
  // with allow_stale its submit() path answers EMBED from the stale cache.
  serve::EngineConfig ecfg;
  ecfg.admission.shed_queue_fraction = 0.0;
  ecfg.allow_stale = true;
  InferenceEngine eng(reg, &cache, ecfg);
  const Response stale = eng.call(embed_request(w, 0));
  EXPECT_TRUE(stale.degraded);
  EXPECT_EQ(stale.embedding, warm.embedding);
  EXPECT_GE(eng.metrics().shed_count(), 1u);
  EXPECT_GE(eng.metrics().degraded_count(), 1u)
      << "shed-path stale serves must count in the degraded metrics";
}

TEST(ServeResilience, ExpiredDeadlineIsPermanentAndNeverRetried) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ecfg;
  ecfg.max_delay_ms = 60;  // batch window far exceeds the deadline below
  InferenceEngine eng(reg, /*cache=*/nullptr, ecfg);
  serve::ProtocolConfig pcfg;
  pcfg.deadline_ms = 1;
  pcfg.retry.max_attempts = 3;
  pcfg.retry.base_backoff_ms = 0.0;
  auto lc0 = w.lcs[0];
  pcfg.load_design = [lc0](const std::string&) { return lc0; };
  serve::ProtocolHandler handler(eng, pcfg);

  const std::string resp = handler.handle_line("ATP chaos_alu");
  EXPECT_EQ(resp.rfind("ERR deadline_expired", 0), 0u) << resp;
  EXPECT_EQ(eng.metrics().snapshot().retries, 0u)
      << "a request whose deadline passed must not be re-submitted";
  EXPECT_EQ(eng.metrics().snapshot().deadline_expired, 1u);
}

TEST(ServeResilience, HalfOpenProbeClosesTheBreakerAfterRecovery) {
  const ServeWorld& w = world();
  const FaultGuard guard;
  ModelRegistry reg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 1;
  bcfg.open_cooldown_ms = 10;
  reg.set_breaker_config(bcfg);
  reg.install("default", w.session);
  InferenceEngine eng(reg, /*cache=*/nullptr, {});

  testing::arm_fault_prob("serve.session.forward", 1.0, /*seed=*/1);
  EXPECT_THROW(eng.call(atp_request(w, 0)), testing::InjectedFault);
  ASSERT_EQ(reg.breaker_state("default"), BreakerState::kOpen);
  testing::disarm_all_faults();  // the fault "heals"

  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  const Response r = eng.call(atp_request(w, 0));  // the half-open probe
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(reg.breaker_state("default"), BreakerState::kClosed);
  const ModelRegistry::BreakerStats st = reg.breaker_stats();
  EXPECT_EQ(st.open, 0u);
  EXPECT_GE(st.open_events, 1u);
  EXPECT_GE(st.half_open_events, 1u);
  EXPECT_GE(st.close_events, 1u);
}

TEST(ServeResilience, AdmissionShedsLowPriorityWithTypedTransientError) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ecfg;
  ecfg.admission.shed_queue_fraction = 0.0;  // shed all low-priority traffic
  InferenceEngine eng(reg, /*cache=*/nullptr, ecfg);
  try {
    eng.call(embed_request(w, 0));
    FAIL() << "EMBED must be shed at zero threshold";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "shed");
    EXPECT_TRUE(e.transient());
  }
  // High-priority traffic still flows.
  EXPECT_NO_THROW(eng.call(atp_request(w, 0)));
  EXPECT_GE(eng.metrics().shed_count(), 1u);
  EXPECT_NE(eng.metrics_text().find("shed"), std::string::npos);
  EXPECT_NE(eng.metrics_json().find("\"shed\""), std::string::npos);
}

TEST(ServeResilience, ProtocolRetriesTransientFaultsAndCountsThem) {
  const ServeWorld& w = world();
  const FaultGuard guard;
  ModelRegistry reg;
  reg.install("default", w.session);
  InferenceEngine eng(reg, /*cache=*/nullptr, {});
  serve::ProtocolConfig pcfg;
  pcfg.retry.max_attempts = 3;
  pcfg.retry.base_backoff_ms = 0.0;
  auto lc0 = w.lcs[0];
  pcfg.load_design = [lc0](const std::string&) { return lc0; };
  serve::ProtocolHandler handler(eng, pcfg);

  // The first forward attempt dies; the protocol-level retry succeeds.
  testing::arm_fault("serve.session.forward", 1);
  const std::string resp = handler.handle_line("ATP chaos_alu");
  EXPECT_EQ(resp.rfind("OK ATP", 0), 0u) << resp;
  EXPECT_GE(eng.metrics().snapshot().retries, 1u);
}

// ---------------------------------------------------------------------------
// chaos soak: seeded multi-site probabilistic faults under concurrency

TEST(ChaosSoak, SeededMultiSiteFaultsDegradePredictably) {
  const ServeWorld& w = world();
  const FaultGuard guard;
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("MOSS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 1;
  }
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  // Fault-free references, straight from the model (like serve_test).
  const core::MossModel& model = w.session->model();
  std::vector<std::vector<double>> ref_atp(w.batches.size());
  std::vector<std::vector<float>> ref_embed(w.batches.size());
  std::vector<std::vector<double>> ref_toggle(w.batches.size());
  for (std::size_t i = 0; i < w.batches.size(); ++i) {
    const core::CircuitBatch& b = *w.batches[i];
    const Tensor h = model.node_embeddings(b);
    const Tensor flop = model.predict_arrival(b, h, b.flop_rows);
    for (std::size_t k = 0; k < b.flop_rows.size(); ++k) {
      ref_atp[i].push_back(static_cast<double>(flop.at(k, 0)) *
                           core::kArrivalScale);
    }
    ref_embed[i] = model.netlist_embedding(b, h).data();
    const core::LocalPredictions pred = model.predict_local(b, h);
    for (std::size_t k = 0; k < b.cell_rows.size(); ++k) {
      ref_toggle[i].push_back(static_cast<double>(pred.toggle.at(k, 0)));
    }
  }

  ModelRegistry reg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 3;
  bcfg.open_cooldown_ms = 25;
  reg.set_breaker_config(bcfg);
  reg.install("default", w.session);
  EmbeddingCache cache(16u << 20);
  serve::EngineConfig ecfg;
  ecfg.allow_stale = true;
  InferenceEngine eng(reg, &cache, ecfg);
  eng.register_pool("pool", w.batches);

  // Prewarm the cache fault-free so degraded mode has something to serve.
  for (std::size_t i = 0; i < w.batches.size(); ++i) {
    ASSERT_FALSE(eng.call(embed_request(w, i)).degraded);
  }

  testing::arm_chaos({{"serve.session.forward", 0.05},
                      {"serve.engine.dispatch", 0.02},
                      {"serve.cache.insert", 0.02},
                      {"serve.admission.enqueue", 0.01}},
                     seed);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 150;
  std::atomic<std::uint64_t> ok{0}, degraded_ok{0}, failed{0}, untyped{0},
      mismatched{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t ci = (t + i) % w.batches.size();
        const int kind = static_cast<int>((t * kPerThread + i) % 4);
        try {
          Request rq;
          if (kind == 0) {
            rq = atp_request(w, ci);
          } else if (kind == 1) {
            rq.kind = RequestKind::kTrpPp;
            rq.circuit = w.lcs[ci];
            rq.batch = w.batches[ci];
          } else if (kind == 2) {
            rq = embed_request(w, ci);
          } else {
            rq.kind = RequestKind::kFepRank;
            rq.pool = "pool";
            rq.rtl_text = w.lcs[ci]->module_text;
          }
          const Response r = eng.call(rq);
          ++ok;
          if (r.degraded) {
            ++degraded_ok;
            // Only low-priority kinds may ever be served degraded.
            if (kind == 0 || kind == 1) ++mismatched;
            continue;
          }
          // Non-degraded successes must be bit-identical to fault-free.
          if (kind == 0) {
            if (r.values != ref_atp[ci]) ++mismatched;
          } else if (kind == 1) {
            if (r.values != ref_toggle[ci]) ++mismatched;
          } else if (kind == 2) {
            if (r.embedding != ref_embed[ci]) ++mismatched;
          } else if (r.ranking.empty()) {
            ++mismatched;
          }
        } catch (const ContextError& e) {
          ++failed;
          if (e.context_value("reason").empty()) ++untyped;
        } catch (const testing::InjectedFault&) {
          ++failed;  // typed by definition
        } catch (...) {
          ++failed;
          ++untyped;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(ok + failed, total);
  EXPECT_EQ(untyped.load(), 0u) << "every failure must be a typed error";
  EXPECT_EQ(mismatched.load(), 0u)
      << "non-degraded successes must match the fault-free reference";
  EXPECT_GT(ok.load(), total / 4) << "service must keep making progress";
  EXPECT_LT(failed.load(), total * 3 / 4) << "error rate must stay bounded";

  // Disarm and recover: the breaker probe closes the circuit and a fresh
  // request of every kind succeeds non-degraded.
  testing::disarm_all_faults();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(bcfg.open_cooldown_ms + 10));
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    try {
      recovered = !eng.call(atp_request(w, 0)).degraded;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered) << "service must return to healthy after the chaos";
  EXPECT_FALSE(eng.call(embed_request(w, 0)).degraded);
  EXPECT_EQ(eng.health().state, HealthState::kOk);
  EXPECT_EQ(reg.breaker_state("default"), BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// environment-armed faults (exercised by the CI fault-injection job, which
// runs this binary with MOSS_FAULT=<site>:1 set)

TEST(ServeFaultEnv, ForwardFaultFailsOneRequestThenRecovers) {
  const char* env = std::getenv("MOSS_FAULT");
  if (env == nullptr ||
      std::string(env).find("serve.session.forward") == std::string::npos) {
    GTEST_SKIP() << "MOSS_FAULT not set for serve.session.forward";
  }
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  InferenceEngine eng(reg, /*cache=*/nullptr, {});
  EXPECT_THROW(eng.call(atp_request(w, 0)), testing::InjectedFault);
  // The env fault fires exactly once; the engine must still be healthy.
  const Response r = eng.call(atp_request(w, 0));
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.values.size(), w.batches[0]->flop_rows.size());
}

TEST(ServeFaultEnv, AdmissionFaultFailsOneSubmitThenRecovers) {
  const char* env = std::getenv("MOSS_FAULT");
  if (env == nullptr ||
      std::string(env).find("serve.admission.enqueue") == std::string::npos) {
    GTEST_SKIP() << "MOSS_FAULT not set for serve.admission.enqueue";
  }
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  InferenceEngine eng(reg, /*cache=*/nullptr, {});
  EXPECT_THROW(eng.call(atp_request(w, 0)), testing::InjectedFault);
  EXPECT_NO_THROW(eng.call(atp_request(w, 0)));
}

}  // namespace
}  // namespace moss
