// Bit-identity tests for the blocked/SIMD kernel layer (tensor/kernels.hpp).
//
// Every EXPECT here compares bit patterns (memcmp), not tolerances: the
// kernels' contract is that blocking, threading and fusion are pure
// scheduling changes that never reassociate a float reduction chain. If one
// of these tests starts failing by "only" 1 ulp, the kernel is wrong — fix
// the kernel, do not loosen the test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core_util/check.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace moss::tensor {
namespace {

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

std::vector<float> randv(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

// Adversarial shapes: degenerate 1×1, K/N far from any block multiple,
// tall-skinny GNN-like, single-column, and serve batch-ish sizes. {M, K, N}.
const std::size_t kShapes[][3] = {
    {1, 1, 1},    {1, 7, 1},      {5, 3, 2},     {7, 17, 19},
    {33, 40, 40}, {129, 32, 1},   {256, 48, 33}, {1000, 32, 32},
    {64, 64, 96}, {130, 257, 40},
};

TEST(Kernels, GemmBitIdenticalToNaiveAcrossShapes) {
  Rng rng(11);
  for (const auto& s : kShapes) {
    const std::size_t M = s[0], K = s[1], N = s[2];
    const auto A = randv(M * K, rng);
    const auto B = randv(K * N, rng);
    // Nonzero initial C: gemm accumulates, it does not overwrite.
    const auto C0 = randv(M * N, rng);
    auto c_ref = C0, c_blk = C0;
    kernels::gemm_naive(M, K, N, A.data(), B.data(), c_ref.data());
    kernels::gemm(M, K, N, A.data(), B.data(), c_blk.data());
    EXPECT_TRUE(bits_equal(c_ref, c_blk))
        << "gemm mismatch at " << M << "x" << K << "x" << N;
  }
}

TEST(Kernels, GemmBitIdenticalAtEveryThreadCount) {
  Rng rng(12);
  const std::size_t big[][3] = {{256, 48, 33}, {1000, 32, 32}, {300, 64, 64}};
  for (const auto& s : big) {
    const std::size_t M = s[0], K = s[1], N = s[2];
    const auto A = randv(M * K, rng);
    const auto B = randv(K * N, rng);
    const auto C0 = randv(M * N, rng);
    auto c1 = C0;
    kernels::set_threads(1);
    kernels::gemm(M, K, N, A.data(), B.data(), c1.data());
    for (const std::size_t t : {2u, 4u}) {
      auto ct = C0;
      kernels::set_threads(t);
      kernels::gemm(M, K, N, A.data(), B.data(), ct.data());
      EXPECT_TRUE(bits_equal(c1, ct))
          << M << "x" << K << "x" << N << " differs at threads=" << t;
    }
    kernels::set_threads(1);
  }
}

TEST(Kernels, GemmGatherFormMatchesNaive) {
  Rng rng(13);
  const std::size_t rows = 9, K = 17, N = 19;
  const auto A = randv(rows * K, rng);
  const auto B = randv(K * N, rng);
  // Repeats, out-of-order, and every-row coverage.
  const std::vector<int> idx = {3, 3, 0, 8, 1, 1, 1, 7, 2, 6, 5, 4, 0, 8};
  const std::size_t M = idx.size();
  const auto C0 = randv(M * N, rng);
  auto c_ref = C0, c_blk = C0;
  kernels::gemm_naive(M, K, N, A.data(), B.data(), c_ref.data(), idx.data());
  kernels::gemm(M, K, N, A.data(), B.data(), c_blk.data(), idx.data());
  EXPECT_TRUE(bits_equal(c_ref, c_blk));
}

TEST(Kernels, GemmBackwardsBitIdenticalToNaive) {
  Rng rng(14);
  for (const auto& s : kShapes) {
    const std::size_t M = s[0], K = s[1], N = s[2];
    const auto A = randv(M * K, rng);
    const auto G = randv(M * N, rng);
    const auto B = randv(K * N, rng);
    // Gradients accumulate into nonzero buffers in real backward passes.
    const auto dA0 = randv(M * K, rng);
    const auto dB0 = randv(K * N, rng);

    auto da_ref = dA0, da_blk = dA0;
    kernels::gemm_dA_naive(M, K, N, G.data(), B.data(), da_ref.data());
    kernels::gemm_dA(M, K, N, G.data(), B.data(), da_blk.data());
    EXPECT_TRUE(bits_equal(da_ref, da_blk))
        << "gemm_dA mismatch at " << M << "x" << K << "x" << N;

    auto db_ref = dB0, db_blk = dB0;
    kernels::gemm_dB_naive(M, K, N, A.data(), G.data(), db_ref.data());
    kernels::gemm_dB(M, K, N, A.data(), G.data(), db_blk.data());
    EXPECT_TRUE(bits_equal(db_ref, db_blk))
        << "gemm_dB mismatch at " << M << "x" << K << "x" << N;
  }
}

TEST(Kernels, GemmDBGatherFormMatchesNaive) {
  Rng rng(15);
  const std::size_t rows = 6, K = 13, N = 11;
  const auto A = randv(rows * K, rng);
  const std::vector<int> idx = {5, 0, 0, 2, 4, 4, 4, 1, 3};
  const std::size_t M = idx.size();
  const auto G = randv(M * N, rng);
  const auto dB0 = randv(K * N, rng);
  auto db_ref = dB0, db_blk = dB0;
  kernels::gemm_dB_naive(M, K, N, A.data(), G.data(), db_ref.data(),
                         idx.data());
  kernels::gemm_dB(M, K, N, A.data(), G.data(), db_blk.data(), idx.data());
  EXPECT_TRUE(bits_equal(db_ref, db_blk));
}

// Regression for the removed `av == 0.0f` fast path: 0·NaN must be NaN and
// 0·Inf must be NaN (IEEE 754), so a zero in one operand cannot skip the
// multiply when the other operand may be non-finite.
TEST(Kernels, ZeroTimesNaNPropagates) {
  const float nan = std::nanf("");
  const float inf = std::numeric_limits<float>::infinity();
  {
    const std::vector<float> A = {0.0f, 1.0f};
    const std::vector<float> B = {nan, 2.0f};
    std::vector<float> c_naive(1, 0.0f), c_blk(1, 0.0f);
    kernels::gemm_naive(1, 2, 1, A.data(), B.data(), c_naive.data());
    kernels::gemm(1, 2, 1, A.data(), B.data(), c_blk.data());
    EXPECT_TRUE(std::isnan(c_naive[0]));
    EXPECT_TRUE(std::isnan(c_blk[0]));
  }
  {
    const std::vector<float> A = {0.0f};
    const std::vector<float> G = {inf};
    std::vector<float> db_naive(1, 0.0f), db_blk(1, 0.0f);
    kernels::gemm_dB_naive(1, 1, 1, A.data(), G.data(), db_naive.data());
    kernels::gemm_dB(1, 1, 1, A.data(), G.data(), db_blk.data());
    EXPECT_TRUE(std::isnan(db_naive[0]));
    EXPECT_TRUE(std::isnan(db_blk[0]));
  }
  // End to end through the autograd op: matmul([0], [NaN]) is NaN, and the
  // NaN flows into both gradients via the backward GEMMs.
  Tensor a = Tensor::from({0.0f}, 1, 1, /*requires_grad=*/true);
  Tensor b = Tensor::from({nan}, 1, 1, /*requires_grad=*/true);
  Tensor y = matmul(a, b);
  EXPECT_TRUE(std::isnan(y.item()));
  sum_all(y).backward();
  EXPECT_TRUE(std::isnan(a.grad()[0]));  // dA = G·bᵀ = 1·NaN
}

TEST(Kernels, RowsWeightedSumMatchesManualLoop) {
  Rng rng(16);
  const std::size_t V = 23, D = 40;
  const auto table = randv(V * D, rng);
  const std::vector<int> ids = {7, 0, 22, 7, 13, 1, 1, 9};
  const auto w = randv(ids.size(), rng);
  for (const bool weighted : {true, false}) {
    std::vector<float> ref(D, 0.0f), out(D, 0.0f);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const float wi = weighted ? w[i] : 1.0f;
      const float* row = table.data() + static_cast<std::size_t>(ids[i]) * D;
      for (std::size_t d = 0; d < D; ++d) ref[d] += row[d] * wi;
    }
    kernels::rows_weighted_sum(table.data(), D, ids.data(),
                               weighted ? w.data() : nullptr, ids.size(),
                               out.data());
    EXPECT_TRUE(bits_equal(ref, out)) << "weighted=" << weighted;
  }
}

// --- Fused autograd ops vs their composed equivalents -----------------------

struct FusedCase {
  std::size_t M, K, N;
  bool addend, bias;
};

TEST(Kernels, MatmulBiasTanhMatchesComposedOps) {
  const FusedCase cases[] = {
      {1, 1, 1, true, true},   {7, 17, 19, true, true},
      {33, 40, 40, true, false}, {129, 32, 5, false, true},
      {64, 48, 33, false, false},
  };
  for (const FusedCase& c : cases) {
    Rng rng(17);
    // Two identical sets of leaves (same rng stream restart) so the fused
    // and composed graphs are bit-for-bit the same computation.
    const auto make = [&](Rng& r) {
      struct {
        Tensor x, w, ad, b;
      } t;
      t.x = Tensor::randn(c.M, c.K, r, 1.0f, true);
      t.w = Tensor::randn(c.K, c.N, r, 1.0f, true);
      if (c.addend) t.ad = Tensor::randn(c.M, c.N, r, 1.0f, true);
      if (c.bias) t.b = Tensor::randn(1, c.N, r, 1.0f, true);
      return t;
    };
    Rng r1(99), r2(99);
    auto f = make(r1);
    auto g = make(r2);

    Tensor fused = kernels::matmul_bias_tanh(f.x, f.w, f.ad, f.b);
    Tensor composed = matmul(g.x, g.w);
    if (c.addend) composed = add(composed, g.ad);
    if (c.bias) composed = add(composed, g.b);
    composed = tanh_t(composed);
    ASSERT_TRUE(bits_equal(fused.data(), composed.data()))
        << c.M << "x" << c.K << "x" << c.N;

    sum_all(fused).backward();
    sum_all(composed).backward();
    EXPECT_TRUE(bits_equal(f.x.grad(), g.x.grad()));
    EXPECT_TRUE(bits_equal(f.w.grad(), g.w.grad()));
    if (c.addend) EXPECT_TRUE(bits_equal(f.ad.grad(), g.ad.grad()));
    if (c.bias) EXPECT_TRUE(bits_equal(f.b.grad(), g.b.grad()));
  }
}

TEST(Kernels, GatherMatmulMatchesComposedOps) {
  const std::size_t rows = 9, K = 17, N = 19;
  const std::vector<int> idx = {3, 3, 0, 8, 1, 1, 1, 7, 2, 6, 5, 4, 0, 8};
  Rng r1(7), r2(7);
  Tensor x1 = Tensor::randn(rows, K, r1, 1.0f, true);
  Tensor w1 = Tensor::randn(K, N, r1, 1.0f, true);
  Tensor x2 = Tensor::randn(rows, K, r2, 1.0f, true);
  Tensor w2 = Tensor::randn(K, N, r2, 1.0f, true);

  Tensor fused = kernels::gather_matmul(x1, idx, w1);
  Tensor composed = matmul(gather_rows(x2, idx), w2);
  ASSERT_TRUE(bits_equal(fused.data(), composed.data()));

  sum_all(fused).backward();
  sum_all(composed).backward();
  EXPECT_TRUE(bits_equal(x1.grad(), x2.grad()));
  EXPECT_TRUE(bits_equal(w1.grad(), w2.grad()));
}

TEST(Kernels, GatherMatmulRejectsBadIndex) {
  Rng rng(8);
  Tensor x = Tensor::randn(4, 3, rng, 1.0f, false);
  Tensor w = Tensor::randn(3, 2, rng, 1.0f, false);
  EXPECT_THROW(kernels::gather_matmul(x, {0, 4}, w), Error);
  EXPECT_THROW(kernels::gather_matmul(x, {-1}, w), Error);
}

// In-place scatter vs the functional op: same loss, same leaf gradients,
// even when the base participates in the graph both before and after the
// scatter (the GNN pattern: gather from h, update, scatter back into h).
TEST(Kernels, InPlaceScatterMatchesFunctionalScatter) {
  const std::vector<int> idx = {4, 1, 6};
  const auto run = [&](bool inplace) {
    Rng rng(21);
    Tensor x = Tensor::randn(8, 5, rng, 1.0f, true);
    Tensor w = Tensor::randn(5, 5, rng, 1.0f, true);
    Tensor h = tanh_t(matmul(x, w));
    Tensor rows = tanh_t(matmul(gather_rows(h, idx), w));
    Tensor h2 = inplace ? scatter_rows_(h, idx, rows)
                        : scatter_rows(h, idx, rows);
    Tensor loss = mean_all(mul(h2, h2));
    loss.backward();
    struct {
      float loss;
      std::vector<float> gx, gw;
    } out{loss.item(), x.grad(), w.grad()};
    return out;
  };
  const auto functional = run(false);
  const auto in_place = run(true);
  EXPECT_EQ(functional.loss, in_place.loss);
  EXPECT_TRUE(bits_equal(functional.gx, in_place.gx));
  EXPECT_TRUE(bits_equal(functional.gw, in_place.gw));
}

TEST(Kernels, InPlaceScatterChainsAcrossSteps) {
  // Two successive in-place scatters on the same storage — the GNN's
  // multi-step shape. Backward must restore in reverse order so step 1's
  // gather sees the pre-step-1 buffer.
  const auto run = [&](bool inplace) {
    Rng rng(22);
    Tensor x = Tensor::randn(6, 4, rng, 1.0f, true);
    Tensor h = tanh_t(x);
    for (const auto& step : {std::vector<int>{0, 3}, std::vector<int>{3, 5}}) {
      Tensor rows = tanh_t(scale(gather_rows(h, step), 0.5f));
      h = inplace ? scatter_rows_(h, step, rows)
                  : scatter_rows(h, step, rows);
    }
    Tensor loss = sum_all(h);
    loss.backward();
    struct {
      float loss;
      std::vector<float> gx;
    } out{loss.item(), x.grad()};
    return out;
  };
  const auto functional = run(false);
  const auto in_place = run(true);
  EXPECT_EQ(functional.loss, in_place.loss);
  EXPECT_TRUE(bits_equal(functional.gx, in_place.gx));
}

TEST(Kernels, InPlaceScatterRejectsDuplicatesAndBadShapes) {
  Rng rng(23);
  Tensor h = Tensor::randn(6, 4, rng, 1.0f, false);
  Tensor rows = Tensor::randn(2, 4, rng, 1.0f, false);
  EXPECT_THROW(scatter_rows_(h, {1, 1}, rows), Error);
  EXPECT_THROW(scatter_rows_(h, {0, 6}, rows), Error);
  EXPECT_THROW(scatter_rows_(h, {0}, rows), Error);
}

// --- ScratchArena -----------------------------------------------------------

TEST(Kernels, ArenaRecyclesBuffersAndPreservesValues) {
  // Shape churn: several passes of different shapes. The second and later
  // passes must reuse cached buffers, and every result must be bit-identical
  // to the same computation without an arena.
  const auto compute = [](std::size_t m) {
    Rng rng(31);
    Tensor x = Tensor::randn(m, 24, rng, 1.0f, true);
    Tensor w = Tensor::randn(24, 16, rng, 1.0f, true);
    Tensor y = kernels::matmul_bias_tanh(x, w, Tensor{}, Tensor{});
    Tensor loss = mean_all(mul(y, y));
    loss.backward();
    struct {
      float loss;
      std::vector<float> gx;
    } out{loss.item(), x.grad()};
    return out;
  };

  const std::size_t shapes[] = {40, 8, 40, 64, 8, 40};
  std::vector<float> plain_loss;
  std::vector<std::vector<float>> plain_gx;
  for (const std::size_t m : shapes) {
    const auto r = compute(m);
    plain_loss.push_back(r.loss);
    plain_gx.push_back(r.gx);
  }

  kernels::ScratchArena arena;
  {
    const kernels::ScratchArena::Scope scope(arena);
    for (std::size_t i = 0; i < std::size(shapes); ++i) {
      const auto r = compute(shapes[i]);
      EXPECT_EQ(plain_loss[i], r.loss) << "pass " << i;
      EXPECT_TRUE(bits_equal(plain_gx[i], r.gx)) << "pass " << i;
      if (i == 0) {
        // Pass 0's intermediates have been released back to the pool.
        EXPECT_GT(arena.cached_buffers(), 0u);
      }
    }
  }
  EXPECT_GT(arena.cached_bytes(), 0u);
}

TEST(Kernels, TensorsMayOutliveTheArena) {
  Tensor escaped;
  {
    kernels::ScratchArena arena;
    const kernels::ScratchArena::Scope scope(arena);
    Rng rng(32);
    Tensor x = Tensor::randn(4, 4, rng, 1.0f, false);
    escaped = tanh_t(x);
  }  // arena destroyed; escaped still owns its (pool-born) buffer
  EXPECT_EQ(escaped.rows(), 4u);
  float sum = 0.0f;
  for (const float v : escaped.data()) sum += v;
  EXPECT_TRUE(std::isfinite(sum));
}

}  // namespace
}  // namespace moss::tensor
