#include <gtest/gtest.h>

#include <cmath>

#include "core_util/rng.hpp"
#include "lm/encoder.hpp"
#include "lm/tokenizer.hpp"

namespace moss::lm {
namespace {

TEST(Tokenizer, SplitsWordsAndOperators) {
  const auto w = tokenize_words("assign y = a + b; // sum");
  // ',' ';' '.' are dropped; everything else kept.
  const std::vector<std::string> expect{"assign", "y", "=", "a",
                                        "+",      "b", "/", "/", "sum"};
  EXPECT_EQ(w, expect);
}

TEST(Tokenizer, LowercasesAndSplitsDigits) {
  const auto w = tokenize_words("Count3 ACC");
  const std::vector<std::string> expect{"count", "3", "acc"};
  EXPECT_EQ(w, expect);
}

TEST(Tokenizer, KeepsTwoCharOperators) {
  const auto w = tokenize_words("a <= b >> 2");
  const std::vector<std::string> expect{"a", "<=", "b", ">>", "2"};
  EXPECT_EQ(w, expect);
}

TEST(Tokenizer, PureNumberSurvives) {
  const auto w = tokenize_words("8'd255");
  const std::vector<std::string> expect{"8", "'", "d", "255"};
  EXPECT_EQ(w, expect);
}

TEST(Tokenizer, HashedIdsInRange) {
  TokenizerConfig cfg;
  cfg.vocab_size = 128;
  const auto ids = tokenize("module foo (input a, output b);", cfg);
  EXPECT_FALSE(ids.empty());
  for (const int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 128);
  }
}

TEST(Tokenizer, Deterministic) {
  TokenizerConfig cfg;
  EXPECT_EQ(tokenize("reg [7:0] count;", cfg), tokenize("reg [7:0] count;", cfg));
}

TEST(Encoder, ShapeAndDeterminism) {
  TextEncoder enc;
  const auto e1 = enc.encode("the counter increments");
  const auto e2 = enc.encode("the counter increments");
  EXPECT_EQ(e1.rows(), 1u);
  EXPECT_EQ(e1.cols(), enc.dim());
  EXPECT_EQ(e1.data(), e2.data());
}

TEST(Encoder, DifferentTextsDiffer) {
  TextEncoder enc;
  const auto a = enc.encode("2-input NAND gate inverting");
  const auto b = enc.encode("positive-edge-triggered D flip-flop register");
  float diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 0.01f);
}

TEST(Encoder, EmptyTextIsZero) {
  TextEncoder enc;
  const auto e = enc.encode("");
  for (const float v : e.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Encoder, BatchMatchesSingle) {
  TextEncoder enc;
  const std::vector<std::string> texts{"a and b", "c xor d"};
  const auto batch = enc.encode_batch(texts);
  ASSERT_EQ(batch.rows(), 2u);
  const auto e0 = enc.encode(texts[0]);
  for (std::size_t c = 0; c < enc.dim(); ++c) {
    EXPECT_FLOAT_EQ(batch.at(0, c), e0.at(0, c));
  }
}

float cosine(const tensor::Tensor& a, const tensor::Tensor& b) {
  float dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a.data()[i] * b.data()[i];
    na += a.data()[i] * a.data()[i];
    nb += b.data()[i] * b.data()[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9f);
}

TEST(FineTune, LossDecreases) {
  TextEncoder enc({512, 16, 1});
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("register counter increments by one each clock cycle");
    corpus.push_back("shift register moves bits left each clock cycle");
    corpus.push_back("accumulator adds the product to its value");
  }
  FineTuneConfig cfg;
  cfg.epochs = 4;
  cfg.max_pairs_per_epoch = 20000;
  Rng rng(11);
  const auto report = fine_tune(enc, corpus, cfg, rng);
  ASSERT_EQ(report.epoch_loss.size(), 4u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(FineTune, CooccurringTokensGetSimilar) {
  // Two synthetic "languages": tokens within a family co-occur, across
  // families never. After fine-tuning, same-family sentences must be more
  // similar than cross-family ones.
  TextEncoder enc({512, 16, 2});
  std::vector<std::string> corpus;
  for (int i = 0; i < 60; ++i) {
    corpus.push_back("alpha beta gamma delta alpha beta gamma delta");
    corpus.push_back("omega sigma lambda kappa omega sigma lambda kappa");
  }
  FineTuneConfig cfg;
  cfg.epochs = 6;
  cfg.max_pairs_per_epoch = 30000;
  Rng rng(12);
  fine_tune(enc, corpus, cfg, rng);
  const auto a1 = enc.encode("alpha beta");
  const auto a2 = enc.encode("gamma delta");
  const auto b1 = enc.encode("omega sigma");
  EXPECT_GT(cosine(a1, a2), cosine(a1, b1));
}

TEST(Encoder, CenteredDiffersFromRaw) {
  TextEncoder enc({512, 16, 4});
  std::vector<std::string> corpus(30, "alpha beta gamma delta epsilon");
  corpus.push_back("omega sigma");
  FineTuneConfig cfg;
  cfg.epochs = 1;
  cfg.max_pairs_per_epoch = 4000;
  Rng rng(3);
  fine_tune(enc, corpus, cfg, rng);
  ASSERT_FALSE(enc.center().empty());
  const auto raw = enc.encode("alpha beta");
  const auto centered = enc.encode_centered("alpha beta");
  // centered = raw - center, elementwise.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(centered.data()[i], raw.data()[i] - enc.center()[i], 1e-6f);
  }
}

TEST(Encoder, CenteringSpreadsCorpusAngles) {
  TextEncoder enc({512, 16, 5});
  std::vector<std::string> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back("module shared tokens everywhere plus unique" +
                     std::to_string(i));
  }
  FineTuneConfig cfg;
  cfg.epochs = 1;
  cfg.max_pairs_per_epoch = 6000;
  Rng rng(4);
  fine_tune(enc, corpus, cfg, rng);
  const float raw_cos = cosine(enc.encode(corpus[0]), enc.encode(corpus[1]));
  const float cen_cos = cosine(enc.encode_centered(corpus[0]),
                               enc.encode_centered(corpus[1]));
  EXPECT_LT(cen_cos, raw_cos);  // boilerplate direction removed
}

TEST(FineTune, IdfDownweightsCommonTokens) {
  TextEncoder enc({512, 16, 6});
  std::vector<std::string> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back("common common common rare" + std::to_string(i));
  }
  FineTuneConfig cfg;
  cfg.epochs = 1;
  cfg.max_pairs_per_epoch = 4000;
  Rng rng(5);
  fine_tune(enc, corpus, cfg, rng);
  const auto& w = enc.token_weights();
  ASSERT_FALSE(w.empty());
  const auto common_id = tokenize("common", {512})[0];
  const auto rare_word_id = tokenize("xyzzy", {512})[0];  // df=0 -> max idf
  EXPECT_LT(w[static_cast<std::size_t>(common_id)],
            w[static_cast<std::size_t>(rare_word_id)]);
}

TEST(FineTune, CacheInvalidated) {
  TextEncoder enc({256, 8, 3});
  const auto before = enc.encode("alpha beta gamma").data();
  std::vector<std::string> corpus(20, "alpha beta gamma alpha beta gamma");
  FineTuneConfig cfg;
  cfg.epochs = 2;
  cfg.max_pairs_per_epoch = 5000;
  Rng rng(13);
  fine_tune(enc, corpus, cfg, rng);
  const auto after = enc.encode("alpha beta gamma").data();
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace moss::lm
