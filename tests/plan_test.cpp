// moss::plan test suite: compile invariants, blob round-trip + corruption
// matrix, hash-consed cone bit-identity across every design family, and the
// plan-walking simulator/STA consumers against their pointer-walk originals.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"
#include "core/features.hpp"
#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "core_util/hash.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "plan/plan.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

namespace moss {
namespace {

using cell::standard_library;
using core::CircuitBatch;
using netlist::Netlist;
using netlist::NodeId;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// helpers

struct FaultGuard {
  ~FaultGuard() { testing::disarm_all_faults(); }
};

const lm::TextEncoder& enc() {
  static lm::TextEncoder e({2048, 16, 9});
  return e;
}

data::LabeledCircuit labeled(const std::string& family, int size = 1,
                             std::uint64_t seed = 0xC0FFEE) {
  data::DesignSpec spec{family, size, seed, ""};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  return data::label_circuit(spec, standard_library(), cfg);
}

/// In-memory cone cache double: exact map semantics, no budget, no
/// eviction — isolates the hash-cons algebra from EmbeddingCache policy.
class MapCache : public plan::ConeRowCache {
 public:
  std::optional<Tensor> get(std::uint64_t cone_hash) override {
    const auto it = rows_.find(cone_hash);
    if (it == rows_.end()) return std::nullopt;
    return it->second;
  }
  void put(std::uint64_t cone_hash, const Tensor& row) override {
    rows_.emplace(cone_hash, row.detach());
  }
  std::size_t size() const { return rows_.size(); }

 private:
  std::unordered_map<std::uint64_t, Tensor> rows_;
};

bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

std::string tmp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

// ---------------------------------------------------------------------------
// compile invariants

TEST(PlanCompile, ShapesAndInvariants) {
  const auto lc = labeled("gray_counter", 2);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);

  const std::size_t n = lc.netlist.num_nodes();
  ASSERT_EQ(p.num_nodes(), n);
  EXPECT_EQ(p.cell_type.size(), n);
  EXPECT_EQ(p.cluster.size(), n);
  EXPECT_EQ(p.level.size(), n);
  EXPECT_EQ(p.output_load.size(), n);
  EXPECT_EQ(p.topo.size(), n);
  EXPECT_EQ(p.cone_hash.size(), n);
  EXPECT_EQ(p.cone_id.size(), n);
  EXPECT_EQ(p.fanin_offset.size(), n + 1);
  EXPECT_EQ(p.fanout_offset.size(), n + 1);
  EXPECT_EQ(p.fanin_offset.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(p.fanin_offset.back()), p.fanin.size());
  EXPECT_EQ(p.batch_hash, core::content_hash(b));
  EXPECT_EQ(p.num_cells, lc.netlist.num_cells());
  EXPECT_EQ(p.feature_dim,
            static_cast<std::uint32_t>(b.graph.features.cols()));
  EXPECT_EQ(p.flops.size(), lc.netlist.flops().size());
  EXPECT_EQ(p.flop_pin_d.size(), p.flops.size());

  // Node classes and adjacency mirror the netlist exactly.
  std::size_t comb = 0, flops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& node = lc.netlist.node(id);
    const auto begin = static_cast<std::size_t>(p.fanin_offset[i]);
    const auto end = static_cast<std::size_t>(p.fanin_offset[i + 1]);
    ASSERT_EQ(end - begin, node.fanin.size());
    for (std::size_t k = 0; k < node.fanin.size(); ++k) {
      EXPECT_EQ(p.fanin[begin + k], static_cast<std::int32_t>(node.fanin[k]));
    }
    switch (p.klass(static_cast<std::int32_t>(i))) {
      case plan::NodeClass::kComb:
        ++comb;
        EXPECT_TRUE(lc.netlist.is_comb_cell(id));
        break;
      case plan::NodeClass::kFlop:
        ++flops;
        EXPECT_TRUE(lc.netlist.is_flop(id));
        break;
      default:
        break;
    }
    EXPECT_DOUBLE_EQ(p.output_load[i], lc.netlist.output_load(id));
  }
  EXPECT_GT(comb, 0u);
  EXPECT_EQ(flops, p.flops.size());

  // Cone ids are a dense relabeling of cone hashes.
  std::unordered_map<std::uint64_t, std::int32_t> seen;
  std::int32_t max_id = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (p.klass(static_cast<std::int32_t>(i)) == plan::NodeClass::kOutput) {
      EXPECT_EQ(p.cone_id[i], -1);
      EXPECT_EQ(p.cone_hash[i], 0u);
      continue;
    }
    const auto [it, fresh] = seen.emplace(p.cone_hash[i], p.cone_id[i]);
    EXPECT_EQ(it->second, p.cone_id[i]) << "node " << i;
    if (fresh) {
      EXPECT_EQ(p.cone_id[i], ++max_id) << "ids not first-seen dense";
    }
  }
  EXPECT_EQ(p.unique_cones, seen.size());
}

TEST(PlanCompile, StructureOnlyPlanHasNoScheduleOrFeatures) {
  const auto lc = labeled("prbs_generator", 1);
  const plan::ExecutionPlan p = plan::compile_structure(lc.netlist);
  EXPECT_EQ(p.num_nodes(), lc.netlist.num_nodes());
  EXPECT_EQ(p.feature_dim, 0u);
  EXPECT_TRUE(p.features.empty());
  EXPECT_TRUE(p.sched_nodes.empty());
  EXPECT_EQ(p.batch_hash, 0u);
  EXPECT_GT(p.unique_cones, 0u);
}

// ---------------------------------------------------------------------------
// blob round-trip + corruption

TEST(PlanBlob, RoundTripIsByteStable) {
  const auto lc = labeled("alu", 1);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);

  const std::string blob = plan::serialize(p);
  ASSERT_GT(blob.size(), plan::kPlanHeaderBytes);
  EXPECT_EQ(std::memcmp(blob.data(), plan::kPlanMagic, 8), 0);

  const plan::ExecutionPlan q = plan::deserialize(blob, ErrorContext{});
  EXPECT_EQ(q.name, p.name);
  EXPECT_EQ(q.batch_hash, p.batch_hash);
  EXPECT_EQ(q.unique_cones, p.unique_cones);
  EXPECT_EQ(q.cone_hash, p.cone_hash);
  EXPECT_EQ(q.features, p.features);
  // Byte-stability of re-serialization proves every field survived.
  EXPECT_EQ(plan::serialize(q), blob);
}

TEST(PlanBlob, ToBatchReconstructsContentHash) {
  const auto lc = labeled("signed_mac", 1);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);
  const CircuitBatch r = plan::to_batch(p);
  EXPECT_EQ(core::content_hash(r), p.batch_hash);
  EXPECT_EQ(core::batch_content_hash(r), core::batch_content_hash(b));
  EXPECT_EQ(r.cell_rows.size(), b.cell_rows.size());
  EXPECT_EQ(r.flop_rows.size(), b.flop_rows.size());
  EXPECT_EQ(r.toggle, b.toggle);
  EXPECT_EQ(r.module_text, b.module_text);
  EXPECT_DOUBLE_EQ(r.power_uw, b.power_uw);
}

TEST(PlanBlob, CorruptOneByteAnywhereIsDetected) {
  const auto lc = labeled("ctrl_fsm", 1);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const std::string blob = plan::serialize(plan::compile(lc.netlist, b));

  // Hit every header field and a spread of payload offsets: each single-byte
  // flip must fail CRC/magic/version/size validation — never load quietly.
  std::vector<std::size_t> offsets = {0, 3, 8, 12, 16, 24,
                                      plan::kPlanHeaderBytes,
                                      plan::kPlanHeaderBytes + 17};
  for (std::size_t off = plan::kPlanHeaderBytes; off < blob.size();
       off += blob.size() / 13 + 1) {
    offsets.push_back(off);
  }
  for (const std::size_t off : offsets) {
    ASSERT_LT(off, blob.size());
    std::string bad = blob;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    EXPECT_THROW(plan::deserialize(bad, ErrorContext{}), ContextError)
        << "offset " << off;
  }
  // Truncation at any prefix length is also rejected.
  for (const std::size_t len : {std::size_t{0}, std::size_t{7},
                                plan::kPlanHeaderBytes, blob.size() - 1}) {
    EXPECT_THROW(
        plan::deserialize(std::string_view(blob).substr(0, len),
                          ErrorContext{}),
        ContextError)
        << "length " << len;
  }
}

TEST(PlanBlob, SaveIsAtomicUnderRenameFault) {
  const FaultGuard guard;
  const auto lc = labeled("shift_reg", 1);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);
  const std::string path = tmp_path("plan_atomic.mossplan");

  plan::save(p, path);
  const plan::ExecutionPlan loaded = plan::load(path);
  EXPECT_EQ(plan::serialize(loaded), plan::serialize(p));

  // A crash injected at the rename must leave the existing blob untouched.
  testing::arm_fault("serialize.rename");
  const auto lc2 = labeled("shift_reg", 2);
  const CircuitBatch b2 = core::build_batch(lc2, enc(), {});
  EXPECT_THROW(plan::save(plan::compile(lc2.netlist, b2), path),
               testing::InjectedFault);
  const plan::ExecutionPlan survivor = plan::load(path);
  EXPECT_EQ(plan::serialize(survivor), plan::serialize(p));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// hash-consed cones: bit identity across every design family

class PlanFamilySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanFamilySweep, HashconsMatchesPointerWalkColdAndWarm) {
  const auto lc = labeled(GetParam(), 1, 0xBEEF);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);

  gnn::GnnConfig gc;
  gc.feature_dim = b.graph.features.cols();
  gc.hidden = 16;
  gc.num_aggregators = b.graph.num_clusters;
  gc.rounds = 1;
  Rng rng(fnv1a64(GetParam()));
  tensor::ParameterSet params;
  const gnn::TwoPhaseGnn gnn(gc, rng, params);

  const Tensor reference = gnn.run(b.graph).detach();

  MapCache cache;
  plan::ConeStats cold;
  const Tensor first = plan::hashcons_node_embeddings(gnn, p, b, cache, &cold);
  EXPECT_TRUE(bit_identical(first, reference)) << GetParam() << " (cold)";
  EXPECT_GT(cold.scheduled, 0u);
  EXPECT_EQ(cold.reused, 0u);
  EXPECT_EQ(cold.computed, cold.scheduled);

  plan::ConeStats warm;
  const Tensor second = plan::hashcons_node_embeddings(gnn, p, b, cache, &warm);
  EXPECT_TRUE(bit_identical(second, reference)) << GetParam() << " (warm)";
  EXPECT_EQ(warm.reused, warm.scheduled);
  EXPECT_EQ(warm.computed, 0u);
}

TEST_P(PlanFamilySweep, SimulatorAndStaMatchPointerWalk) {
  const auto lc = labeled(GetParam(), 1, 0xF00D);
  const Netlist& nl = lc.netlist;
  const plan::ExecutionPlan p = plan::compile_structure(nl);

  // Cycle simulation: identical values, transition counts and rates.
  sim::Simulator ref(nl);
  plan::PlanSimulator ps(p, nl.library());
  Rng rng(fnv1a64(GetParam()) ^ 0x5151);
  const std::size_t num_pi = nl.inputs().size();
  for (int cycle = 0; cycle < 64; ++cycle) {
    std::vector<std::uint8_t> pis(num_pi);
    for (auto& v : pis) v = static_cast<std::uint8_t>(rng() & 1);
    ref.step(pis);
    ps.step(pis);
  }
  ASSERT_EQ(ps.cycles(), ref.cycles());
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto pid = static_cast<std::int32_t>(i);
    ASSERT_EQ(ps.value(pid), ref.value(id)) << "node " << i;
    ASSERT_EQ(ps.transitions(pid), ref.transitions(id)) << "node " << i;
    EXPECT_DOUBLE_EQ(ps.toggle_rate(pid), ref.toggle_rate(id));
    EXPECT_DOUBLE_EQ(ps.one_rate(pid), ref.one_rate(id));
  }
  EXPECT_EQ(ps.output_values(), ref.output_values());

  // STA: exact arrival equality in both slew modes.
  for (const bool slew : {false, true}) {
    sta::StaOptions opts;
    opts.slew_aware = slew;
    const sta::TimingAnalysis ta(nl, opts);
    const std::vector<double> at = plan::arrival_times(p, nl.library(), opts);
    ASSERT_EQ(at.size(), nl.num_nodes());
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      EXPECT_DOUBLE_EQ(at[i], ta.arrival(static_cast<NodeId>(i)))
          << GetParam() << " node " << i << " slew=" << slew;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PlanFamilySweep,
                         ::testing::ValuesIn(data::families()),
                         [](const auto& info) { return info.param; });

TEST(PlanHashcons, MultiRoundModelFallsBackBitIdentically) {
  const auto lc = labeled("gray_counter", 1);
  const CircuitBatch b = core::build_batch(lc, enc(), {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, b);

  gnn::GnnConfig gc;
  gc.feature_dim = b.graph.features.cols();
  gc.hidden = 16;
  gc.num_aggregators = b.graph.num_clusters;
  gc.rounds = 3;  // cone reuse unsound: must fall back to full run()
  Rng rng(99);
  tensor::ParameterSet params;
  const gnn::TwoPhaseGnn gnn(gc, rng, params);

  MapCache cache;
  plan::ConeStats stats;
  const Tensor out = plan::hashcons_node_embeddings(gnn, p, b, cache, &stats);
  EXPECT_TRUE(bit_identical(out, gnn.run(b.graph).detach()));
  EXPECT_EQ(stats.scheduled, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanHashcons, SharedConesReuseAcrossDifferentSeeds) {
  // Two circuits of the same family share structure; a warm cache from the
  // first must serve some cones of the second, still bit-identically.
  const auto lc1 = labeled("shift_reg", 2, 1);
  const auto lc2 = labeled("shift_reg", 2, 2);
  const CircuitBatch b1 = core::build_batch(lc1, enc(), {});
  const CircuitBatch b2 = core::build_batch(lc2, enc(), {});
  const plan::ExecutionPlan p1 = plan::compile(lc1.netlist, b1);
  const plan::ExecutionPlan p2 = plan::compile(lc2.netlist, b2);

  gnn::GnnConfig gc;
  gc.feature_dim = b1.graph.features.cols();
  gc.hidden = 16;
  gc.num_aggregators = b1.graph.num_clusters;
  gc.rounds = 1;
  Rng rng(7);
  tensor::ParameterSet params;
  const gnn::TwoPhaseGnn gnn(gc, rng, params);

  MapCache cache;
  (void)plan::hashcons_node_embeddings(gnn, p1, b1, cache);
  plan::ConeStats stats;
  const Tensor out = plan::hashcons_node_embeddings(gnn, p2, b2, cache, &stats);
  EXPECT_TRUE(bit_identical(out, gnn.run(b2.graph).detach()));
  EXPECT_GT(stats.reused, 0u) << "no structural sharing detected";
}

// ---------------------------------------------------------------------------
// incremental invalidation

TEST(PlanIncremental, IdenticalPlansHaveNoDirtyCones) {
  const auto lc = labeled("ctrl_fsm", 1);
  const plan::ExecutionPlan p = plan::compile_structure(lc.netlist);
  EXPECT_TRUE(plan::dirty_cones(p, p).empty());
}

TEST(PlanIncremental, EditDirtiesConesAndInvalidationCoversFanout) {
  const auto prev = plan::compile_structure(labeled("alu", 1).netlist);
  const auto next = plan::compile_structure(labeled("alu", 2).netlist);
  const std::vector<std::int32_t> dirty = plan::dirty_cones(prev, next);
  EXPECT_FALSE(dirty.empty());
  for (const std::int32_t id : dirty) {
    EXPECT_NE(next.klass(id), plan::NodeClass::kOutput);
  }

  const std::vector<std::int32_t> seeds = {next.inputs.front()};
  const std::vector<std::int32_t> inval = plan::invalidation_set(next, seeds);
  ASSERT_FALSE(inval.empty());
  EXPECT_TRUE(std::is_sorted(inval.begin(), inval.end()));
  // Closure property: every fanout of a member is a member.
  std::vector<bool> in_set(next.num_nodes(), false);
  for (const std::int32_t id : inval) {
    in_set[static_cast<std::size_t>(id)] = true;
  }
  EXPECT_TRUE(in_set[static_cast<std::size_t>(seeds[0])]);
  for (const std::int32_t id : inval) {
    const auto begin = static_cast<std::size_t>(next.fanout_offset[id]);
    const auto end = static_cast<std::size_t>(next.fanout_offset[id + 1]);
    for (std::size_t k = begin; k < end; ++k) {
      EXPECT_TRUE(in_set[static_cast<std::size_t>(next.fanout[k])])
          << "fanout of " << id << " escaped the closure";
    }
  }
}

// ---------------------------------------------------------------------------
// determinism

TEST(PlanDeterminism, BlobIsIdenticalAcrossLabelingThreadCounts) {
  const std::vector<data::DesignSpec> specs = {
      {"gray_counter", 1, 0xD5, ""}, {"alu", 1, 0xD6, ""}};
  data::DatasetConfig one, many;
  one.sim_cycles = many.sim_cycles = 200;
  one.threads = 1;
  many.threads = 7;
  const auto ds1 = data::build_dataset(specs, standard_library(), one);
  const auto ds7 = data::build_dataset(specs, standard_library(), many);
  ASSERT_EQ(ds1.size(), ds7.size());
  for (std::size_t i = 0; i < ds1.size(); ++i) {
    const std::string blob1 = plan::serialize(
        plan::compile(ds1[i].netlist, core::build_batch(ds1[i], enc(), {})));
    const std::string blob7 = plan::serialize(
        plan::compile(ds7[i].netlist, core::build_batch(ds7[i], enc(), {})));
    EXPECT_EQ(blob1, blob7) << specs[i].family;
  }
}

}  // namespace
}  // namespace moss
