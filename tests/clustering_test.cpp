#include <gtest/gtest.h>

#include "clustering/clustering.hpp"
#include "core_util/rng.hpp"

namespace moss::clustering {
namespace {

/// Three well-separated Gaussian blobs.
Points blobs(Rng& rng, int per_cluster = 10) {
  Points pts;
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      pts.push_back({centers[c][0] + static_cast<float>(rng.normal(0, 0.3)),
                     centers[c][1] + static_cast<float>(rng.normal(0, 0.3))});
    }
  }
  return pts;
}

TEST(Dbscan, FindsSeparatedBlobs) {
  Rng rng(1);
  const Points pts = blobs(rng);
  DbscanConfig cfg;
  cfg.eps = 2.0;
  cfg.min_pts = 3;
  const auto labels = dbscan(pts, cfg);
  EXPECT_EQ(num_clusters(labels), 3u);
  // Points in the same blob share a label.
  for (int c = 0; c < 3; ++c) {
    for (int i = 1; i < 10; ++i) {
      EXPECT_EQ(labels[static_cast<std::size_t>(c * 10)],
                labels[static_cast<std::size_t>(c * 10 + i)]);
    }
  }
}

TEST(Dbscan, OutlierIsNoise) {
  Rng rng(2);
  Points pts = blobs(rng);
  pts.push_back({100.0f, 100.0f});
  DbscanConfig cfg;
  cfg.eps = 2.0;
  cfg.min_pts = 3;
  const auto labels = dbscan(pts, cfg);
  EXPECT_EQ(labels.back(), kNoise);
}

TEST(Dbscan, MinPtsTooHighAllNoise) {
  Points pts{{0, 0}, {10, 10}, {20, 20}};
  DbscanConfig cfg;
  cfg.eps = 1.0;
  cfg.min_pts = 2;
  const auto labels = dbscan(pts, cfg);
  for (const int l : labels) EXPECT_EQ(l, kNoise);
}

TEST(Dbscan, ChainedDensityConnects) {
  // A line of points, each within eps of the next: one cluster.
  Points pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<float>(i) * 0.9f, 0.0f});
  }
  DbscanConfig cfg;
  cfg.eps = 1.0;
  cfg.min_pts = 2;
  const auto labels = dbscan(pts, cfg);
  EXPECT_EQ(num_clusters(labels), 1u);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(Dbscan, BorderPointKeepsFirstCluster) {
  // Two dense clusters whose expansion ranges overlap on one border point
  // (index 6). It is density-reachable from both, is itself not core, and
  // must stay with the cluster that claims it first (index order) — not be
  // relabeled when the second cluster expands.
  //
  // Layout on a line: cluster A at {0.0, 0.2, 0.4, 0.6}, cluster B at
  // {3.4, 3.6, 3.8, 4.0}, border point at 2.0. With eps=1.5/min_pts=4 the
  // border has exactly two neighbors (0.6 and 3.4) so it is never core.
  Points pts{{0.0f}, {0.2f}, {0.4f}, {0.6f},
             {3.4f}, {3.6f}, {3.8f}, {4.0f}, {2.0f}};
  DbscanConfig cfg;
  cfg.eps = 1.5;
  cfg.min_pts = 4;
  const auto labels = dbscan(pts, cfg);
  EXPECT_EQ(num_clusters(labels), 2u);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(labels[0], labels[i]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(labels[4], labels[i]);
  EXPECT_NE(labels[0], labels[4]);
  // The border point joins cluster A (expanded first from index 0).
  EXPECT_EQ(labels[8], labels[0]);
}

TEST(Dbscan, ThreadedMatchesSerial) {
  Rng rng(21);
  Points pts = blobs(rng, 40);
  pts.push_back({100.0f, 100.0f});  // plus an outlier
  DbscanConfig serial;
  serial.eps = 2.0;
  serial.min_pts = 3;
  DbscanConfig threaded = serial;
  threaded.threads = 4;
  EXPECT_EQ(dbscan(pts, serial), dbscan(pts, threaded));
}

TEST(SuggestEps, ThreadedMatchesSerial) {
  Rng rng(22);
  const Points pts = blobs(rng, 25);
  EXPECT_EQ(suggest_eps(pts, 0.25, 1), suggest_eps(pts, 0.25, 4));
  EXPECT_EQ(adaptive_clusters(pts, 4, 1), adaptive_clusters(pts, 4, 4));
}

TEST(SuggestEps, WithinDistanceRange) {
  Rng rng(3);
  const Points pts = blobs(rng);
  const double eps = suggest_eps(pts);
  EXPECT_GT(eps, 0.0);
  EXPECT_LT(eps, 15.0);
}

TEST(Agglomerate, ReachesTargetCount) {
  Rng rng(4);
  const Points pts = blobs(rng);
  const auto labels = agglomerate(pts, 3);
  EXPECT_EQ(num_clusters(labels), 3u);
  // Blob structure recovered.
  for (int c = 0; c < 3; ++c) {
    for (int i = 1; i < 10; ++i) {
      EXPECT_EQ(labels[static_cast<std::size_t>(c * 10)],
                labels[static_cast<std::size_t>(c * 10 + i)]);
    }
  }
}

TEST(Agglomerate, TargetOneMergesAll) {
  Rng rng(5);
  const auto labels = agglomerate(blobs(rng), 1);
  EXPECT_EQ(num_clusters(labels), 1u);
}

TEST(Agglomerate, RespectsInitialLabels) {
  // Two DBSCAN clusters plus far noise. Merging to 2 joins the two nearby
  // clusters (smallest mean distance); the outlier keeps its own cluster.
  Points pts{{0, 0}, {0.1f, 0}, {5, 5}, {5.1f, 5}, {50, 50}};
  std::vector<int> initial{0, 0, 1, 1, kNoise};
  const auto labels = agglomerate(pts, 2, initial);
  EXPECT_EQ(num_clusters(labels), 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
}

TEST(AdaptiveClusters, CompactLabels) {
  Rng rng(6);
  const Points pts = blobs(rng);
  const auto labels = adaptive_clusters(pts, 4);
  const std::size_t g = num_clusters(labels);
  EXPECT_GE(g, 1u);
  EXPECT_LE(g, 4u);
  for (const int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, static_cast<int>(g));
  }
}

TEST(AdaptiveClusters, EmptyInput) {
  EXPECT_TRUE(adaptive_clusters({}, 3).empty());
}

TEST(AdaptiveClusters, Deterministic) {
  Rng rng(7);
  const Points pts = blobs(rng);
  EXPECT_EQ(adaptive_clusters(pts, 5), adaptive_clusters(pts, 5));
}

}  // namespace
}  // namespace moss::clustering
