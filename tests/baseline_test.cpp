#include <gtest/gtest.h>

#include "baseline/deepseq.hpp"

namespace moss::baseline {
namespace {

using cell::standard_library;

data::LabeledCircuit labeled(const char* family, int size = 1) {
  data::DesignSpec s{family, size, 31, ""};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 300;
  return data::label_circuit(s, standard_library(), cfg);
}

TEST(AigBatch, ShapesConsistent) {
  const auto lc = labeled("gray_counter", 1);
  const AigBatch ab = build_aig_batch(lc, 1, 300);
  const auto& g = ab.mapping.conv.aig;
  EXPECT_EQ(ab.batch.graph.num_nodes, g.num_nodes());
  EXPECT_EQ(ab.batch.cell_rows.size(), g.num_nodes());  // every node labeled
  EXPECT_EQ(ab.batch.flop_rows.size(), lc.netlist.flops().size());
  EXPECT_EQ(ab.batch.flop_arrival_norm.size(), lc.netlist.flops().size());
  // Dense arrival supervision: one labeled AIG row per netlist cell.
  EXPECT_EQ(ab.batch.arrival_rows.size(), lc.netlist.num_cells());
  EXPECT_EQ(ab.batch.arrival_norm.size(), ab.batch.arrival_rows.size());
  EXPECT_EQ(ab.mapping.net_cell_ids.size(), lc.netlist.num_cells());
  for (const float t : ab.batch.toggle) {
    EXPECT_GE(t, 0.0f);
    EXPECT_LE(t, 1.0f);
  }
}

TEST(AigBatch, AigToggleMatchesNetlistToggleForMappedCells) {
  // The AIG simulates the same function with the same stimulus seed rule,
  // so mapped toggle labels should track the netlist ones loosely. Strong
  // check: constants toggle 0.
  const auto lc = labeled("alu", 1);
  const AigBatch ab = build_aig_batch(lc, 1, 300);
  EXPECT_FLOAT_EQ(ab.batch.toggle[0], 0.0f);  // const0 node
}

TEST(DeepSeqModel, ForwardAndTrain) {
  const auto lc = labeled("gray_counter", 1);
  AigBatch ab = build_aig_batch(lc, 2, 300);
  DeepSeqConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  DeepSeqModel model(cfg);
  const auto h = model.node_embeddings(ab.batch);
  EXPECT_EQ(h.rows(), ab.batch.graph.num_nodes);

  std::vector<core::CircuitBatch> data{ab.batch};
  core::PretrainConfig pcfg;
  pcfg.epochs = 8;
  pcfg.lr = 3e-3f;
  const auto rep = core::pretrain_model(model, data, pcfg);
  EXPECT_LT(rep.total.back(), rep.total.front());
}

TEST(DeepSeqModel, EvaluateProducesCellLevelMetrics) {
  const auto lc = labeled("alu", 1);
  AigBatch ab = build_aig_batch(lc, 3, 300);
  DeepSeqConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  DeepSeqModel model(cfg);
  const auto acc = evaluate_baseline(model, ab, lc);
  EXPECT_GE(acc.atp, 0.0);
  EXPECT_LE(acc.atp, 1.0);
  EXPECT_GE(acc.trp, 0.0);
  EXPECT_LE(acc.trp, 1.0);
  EXPECT_GE(acc.pp, 0.0);
  EXPECT_LE(acc.pp, 1.0);
}

TEST(DeepSeqModel, TrainingImprovesCellLevelAccuracy) {
  // alu has moderate toggle rates; counters' exponentially rare high bits
  // make the relative-error metric brutal for a single-circuit fit.
  const auto lc = labeled("alu", 2);
  AigBatch ab = build_aig_batch(lc, 4, 500);
  DeepSeqConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  DeepSeqModel model(cfg);
  std::vector<core::CircuitBatch> data{ab.batch};
  core::PretrainConfig pcfg;
  pcfg.epochs = 100;
  pcfg.lr = 3e-3f;
  core::pretrain_model(model, data, pcfg);
  // Fitting a single small circuit must reach usable accuracy.
  const auto after = evaluate_baseline(model, ab, lc);
  EXPECT_GT(after.trp, 0.4);
  EXPECT_GT(after.atp, 0.3);
  EXPECT_GT(after.pp, 0.5);
}

}  // namespace
}  // namespace moss::baseline
