#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "data/generators.hpp"
#include "rtl/parser.hpp"
#include "sim/xsim.hpp"
#include "synth/synthesize.hpp"

namespace moss::sim {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

TEST(XSim, ControllingValuesDominateX) {
  // AND(0, X) = 0 and OR(1, X) = 1; XOR(X, anything) = X.
  Netlist nl(standard_library(), "x");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g_and = nl.add_cell("AND2", "g_and", {a, b});
  const NodeId g_or = nl.add_cell("OR2", "g_or", {a, b});
  const NodeId g_xor = nl.add_cell("XOR2", "g_xor", {a, b});
  nl.add_output("y1", g_and);
  nl.add_output("y2", g_or);
  nl.add_output("y3", g_xor);
  nl.finalize();
  XSimulator sim(nl);
  sim.step({XValue::k0, XValue::kX});
  EXPECT_EQ(sim.value(g_and), XValue::k0);
  EXPECT_EQ(sim.value(g_xor), XValue::kX);
  sim.step({XValue::k1, XValue::kX});
  EXPECT_EQ(sim.value(g_or), XValue::k1);
  EXPECT_EQ(sim.value(g_and), XValue::kX);
  sim.step({XValue::k1, XValue::k0});
  EXPECT_EQ(sim.value(g_xor), XValue::k1);
}

TEST(XSim, FlopsPowerOnUnknown) {
  Netlist nl(standard_library(), "pwr");
  const NodeId d = nl.add_input("d");
  const NodeId q = nl.add_cell("DFF", "q", {d});
  nl.add_output("y", q);
  nl.finalize();
  XSimulator sim(nl);
  sim.step({XValue::kX});
  EXPECT_EQ(sim.value(q), XValue::kX);
  EXPECT_EQ(sim.unknown_flops(), 1u);
  // A known D resolves the state after one edge.
  sim.step({XValue::k1});
  sim.step({XValue::kX});
  EXPECT_EQ(sim.value(q), XValue::k1);
  EXPECT_EQ(sim.unknown_flops(), 1u);  // state is now X again (D was X)
}

TEST(XSim, ResetResolvesState) {
  Netlist nl(standard_library(), "rst");
  const NodeId d = nl.add_input("d");
  const NodeId r = nl.add_input("r");
  const NodeId q = nl.add_cell("DFFR", "q", {d, r});
  nl.add_output("y", q);
  nl.finalize();
  XSimulator sim(nl);
  sim.step({XValue::kX, XValue::k1});  // reset asserted
  EXPECT_EQ(sim.unknown_flops(), 0u);
  sim.step({XValue::kX, XValue::k0});
  EXPECT_EQ(sim.value(q), XValue::k0);  // pre-edge value: reset state
}

TEST(XSim, XEnableHoldsWhenDEqualsQ) {
  Netlist nl(standard_library(), "en");
  const NodeId d = nl.add_input("d");
  const NodeId e = nl.add_input("e");
  const NodeId q = nl.add_cell("DFFE", "q", {d, e});
  nl.add_output("y", q);
  nl.finalize();
  XSimulator sim(nl);
  sim.step({XValue::k1, XValue::k1});  // load 1
  sim.step({XValue::k1, XValue::kX});  // E unknown but D == Q == 1
  sim.step({XValue::kX, XValue::k0});
  EXPECT_EQ(sim.value(q), XValue::k1);
  sim.step({XValue::k0, XValue::kX});  // E unknown, D != Q -> X
  sim.step({XValue::kX, XValue::k0});
  EXPECT_EQ(sim.value(q), XValue::kX);
}

TEST(ResetAnalysis, FullyResettableDesign) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module r (input clk, input rst, input [3:0] d, output [3:0] y);
      reg [3:0] a;
      reg [3:0] b;
      always @(posedge clk) begin
        if (rst) a <= 4'd0; else a <= d;
        if (rst) b <= 4'd5; else b <= a;
      end
      assign y = b;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const ResetCoverage cov = analyze_reset(nl);
  EXPECT_EQ(cov.total_flops, 8u);
  EXPECT_DOUBLE_EQ(cov.coverage, 1.0);
  EXPECT_TRUE(cov.uninitialized.empty());
}

TEST(ResetAnalysis, UnresettableFlopsReported) {
  // 'b' has no reset and loads an input-dependent value: stays X under a
  // reset-only sequence.
  const rtl::Module m = rtl::parse_verilog(R"(
    module u (input clk, input rst, input [3:0] d, output [3:0] y);
      reg [3:0] a;
      reg [3:0] b;
      always @(posedge clk) begin
        if (rst) a <= 4'd0; else a <= d;
        b <= d;
      end
      assign y = a ^ b;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const ResetCoverage cov = analyze_reset(nl);
  EXPECT_EQ(cov.total_flops, 8u);
  EXPECT_EQ(cov.initialized, 4u);
  EXPECT_EQ(cov.uninitialized.size(), 4u);
  for (const auto& name : cov.uninitialized) {
    EXPECT_NE(name.find("b_reg"), std::string::npos) << name;
  }
}

TEST(ResetAnalysis, GeneratedFamiliesFullyResettable) {
  // Every generator family uses synchronous reset on all registers, so
  // reset coverage must be 100%.
  for (const char* fam : {"gray_counter", "alu", "ctrl_fsm", "fifo_ctrl"}) {
    data::DesignSpec spec{fam, 1, 3, ""};
    const Netlist nl =
        synth::synthesize(data::generate(spec), standard_library());
    const ResetCoverage cov = analyze_reset(nl);
    EXPECT_DOUBLE_EQ(cov.coverage, 1.0) << fam;
  }
}

}  // namespace
}  // namespace moss::sim
