// moss::serve test suite: embedding-cache LRU/budget/concurrency semantics,
// bit-identical cached-vs-direct inference for all four model-backed request
// kinds, micro-batching overload behavior (typed queue-full rejections,
// deadlines), fault-injection request isolation, registry hot-swap, metrics
// output, and the VERIFY latency class (SAT-oracle verdicts end to end,
// conflict-budget admission, typed verify_timeout/bad_request errors).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "core_util/thread_pool.hpp"
#include "data/mutate.hpp"
#include "plan/plan.hpp"
#include "power/power.hpp"
#include "sat/oracle.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "tensor/kernels.hpp"

namespace moss {
namespace {

using serve::EmbeddingCache;
using serve::InferenceEngine;
using serve::ModelRegistry;
using serve::Request;
using serve::RequestKind;
using serve::Response;
using tensor::Tensor;

/// Guard that disarms every fault site on scope exit, so a failing
/// EXPECT_THROW cannot leak an armed fault into later tests.
struct FaultGuard {
  ~FaultGuard() { testing::disarm_all_faults(); }
};

Tensor filled(std::size_t cols, float base) {
  Tensor t = Tensor::zeros(1, cols);
  for (std::size_t i = 0; i < cols; ++i) {
    t.data()[i] = base + 0.25f * static_cast<float>(i);
  }
  return t;
}

// ---------------------------------------------------------------------------
// EmbeddingCache

// One 16-float entry costs 16*4 payload + fixed overhead.
constexpr std::size_t kEntry = 16 * 4 + EmbeddingCache::kEntryOverhead;

TEST(EmbeddingCache, HitReturnsIdenticalStorage) {
  EmbeddingCache cache(1 << 20, 1);
  const Tensor v = filled(16, 3.0f);
  cache.put(7, v);
  const auto got = cache.get(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data(), v.data());
  EXPECT_FALSE(cache.get(8).has_value());
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.inserts, 1u);
}

TEST(EmbeddingCache, LruEvictionOrderRespectsRecency) {
  EmbeddingCache cache(3 * kEntry, 1);  // exactly three entries fit
  cache.put(1, filled(16, 1.0f));
  cache.put(2, filled(16, 2.0f));
  cache.put(3, filled(16, 3.0f));
  ASSERT_TRUE(cache.get(1).has_value());  // refresh 1 -> LRU victim is 2
  cache.put(4, filled(16, 4.0f));
  EXPECT_FALSE(cache.get(2).has_value()) << "LRU entry 2 should be evicted";
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 3u);
}

TEST(EmbeddingCache, ByteBudgetNeverExceeded) {
  EmbeddingCache cache(2 * kEntry, 1);
  for (std::uint64_t k = 0; k < 10; ++k) cache.put(k, filled(16, 0.5f));
  auto st = cache.stats();
  EXPECT_LE(st.bytes, cache.byte_budget());
  EXPECT_EQ(st.bytes, st.entries * kEntry);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 8u);

  // Overweight values are refused outright, not admitted-then-evicted —
  // and the refusal is counted, not silent.
  const Tensor huge = filled(1024, 1.0f);  // > 2*kEntry budget
  ASSERT_GT(EmbeddingCache::entry_bytes(huge), cache.byte_budget());
  EXPECT_EQ(st.oversize_rejections, 0u);
  cache.put(99, huge);
  EXPECT_FALSE(cache.get(99).has_value());
  st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_LE(st.bytes, cache.byte_budget());
  EXPECT_EQ(st.oversize_rejections, 1u);
  cache.put(99, huge);
  EXPECT_EQ(cache.stats().oversize_rejections, 2u);
}

TEST(EmbeddingCache, ReplacingAKeyKeepsAccountingExact) {
  EmbeddingCache cache(1 << 20, 1);
  cache.put(5, filled(16, 1.0f));
  cache.put(5, filled(16, 2.0f));  // refresh, not a second entry
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, kEntry);
  EXPECT_EQ(cache.get(5)->data(), filled(16, 2.0f).data());
}

TEST(EmbeddingCache, GetOrComputeComputesOnce) {
  EmbeddingCache cache(1 << 20, 2);
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return filled(16, 7.0f);
  };
  const Tensor a = cache.get_or_compute(42, compute);
  const Tensor b = cache.get_or_compute(42, compute);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(a.data(), b.data());
}

TEST(EmbeddingCache, ShardHammerOnThreadPoolStaysConsistent) {
  EmbeddingCache cache(1 << 20, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  ThreadPool pool(4);
  constexpr std::size_t kOps = 4000;
  constexpr std::uint64_t kKeys = 64;
  std::vector<int> bad(kOps, 0);
  pool.parallel_for(0, kOps, [&](std::size_t i) {
    const std::uint64_t key = (i * 2654435761u) % kKeys;
    const Tensor v = cache.get_or_compute(
        key, [&] { return filled(16, static_cast<float>(key)); });
    // Whoever computed it, the value must always match the key.
    if (v.data() != filled(16, static_cast<float>(key)).data()) bad[i] = 1;
  });
  for (std::size_t i = 0; i < kOps; ++i) {
    ASSERT_EQ(bad[i], 0) << "op " << i << " saw a value from a foreign key";
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, kOps);
  EXPECT_GE(st.hits, kOps - 2 * kKeys);  // a few racing double-computes OK
  EXPECT_EQ(st.entries, kKeys);
  EXPECT_EQ(st.evictions, 0u);
}

TEST(EmbeddingCache, CanonicalRtlIgnoresFormattingOnly) {
  const std::string a = "module m(input x);\n  // a comment\n  wire  w;\n"
                        "/* block\n comment */ endmodule\n";
  const std::string b = "module m(input x); wire w; endmodule";
  EXPECT_EQ(serve::canonical_rtl(a), serve::canonical_rtl(b));
  EXPECT_EQ(serve::rtl_key(1, a), serve::rtl_key(1, b));
  EXPECT_NE(serve::rtl_key(1, a), serve::rtl_key(2, a))
      << "different sessions must never share a key";
  EXPECT_NE(serve::rtl_key(1, "module m; endmodule"),
            serve::rtl_key(1, "module n; endmodule"));
}

// ---------------------------------------------------------------------------
// shared tiny session (built once; labeling + encoder fine-tune is the
// expensive part, the model itself keeps its deterministic fresh init)

struct ServeWorld {
  core::WorkflowConfig cfg;
  std::vector<std::shared_ptr<const data::LabeledCircuit>> lcs;
  std::shared_ptr<const serve::MossSession> session;
  std::vector<std::shared_ptr<const core::CircuitBatch>> batches;
};

const ServeWorld& world() {
  static const ServeWorld* w = [] {
    auto* sw = new ServeWorld();
    sw->cfg.model.hidden = 12;
    sw->cfg.model.rounds = 1;
    sw->cfg.dataset.sim_cycles = 200;
    sw->cfg.encoder = {1024, 12, 5};
    sw->cfg.fine_tune.epochs = 1;
    sw->cfg.fine_tune.max_pairs_per_epoch = 4000;
    const auto& lib = cell::standard_library();
    const std::vector<data::DesignSpec> specs{{"alu", 1, 21, "srv_alu"},
                                              {"crc", 1, 22, "srv_crc"},
                                              {"arbiter", 1, 23, "srv_arb"}};
    std::vector<std::string> corpus;
    for (const auto& spec : specs) {
      sw->lcs.push_back(std::make_shared<data::LabeledCircuit>(
          data::label_circuit(spec, lib, sw->cfg.dataset)));
      corpus.push_back(sw->lcs.back()->module_text);
    }
    sw->session = serve::MossSession::load(sw->cfg, corpus, /*ckpt_path=*/"");
    for (const auto& lc : sw->lcs) {
      sw->batches.push_back(
          std::make_shared<core::CircuitBatch>(sw->session->build(*lc)));
    }
    return sw;
  }();
  return *w;
}

// ---------------------------------------------------------------------------
// bit-identity: engine responses (cold and warm cache) == direct model calls

TEST(ServeEngine, AllFourKindsBitIdenticalColdAndWarm) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});
  eng.register_pool("pool", w.batches);
  const core::MossModel& model = w.session->model();

  for (int pass = 0; pass < 2; ++pass) {  // pass 0: cold cache, 1: warm
    SCOPED_TRACE(pass == 0 ? "cold" : "warm");
    for (std::size_t i = 0; i < w.lcs.size(); ++i) {
      SCOPED_TRACE(w.batches[i]->name);
      const core::CircuitBatch& b = *w.batches[i];
      const Tensor h = model.node_embeddings(b);

      // ATP
      {
        Request rq;
        rq.kind = RequestKind::kAtp;
        rq.batch = w.batches[i];
        const Response r = eng.call(rq);
        const Tensor flop = model.predict_arrival(b, h, b.flop_rows);
        ASSERT_EQ(r.values.size(), b.flop_rows.size());
        for (std::size_t k = 0; k < r.values.size(); ++k) {
          EXPECT_EQ(r.values[k], static_cast<double>(flop.at(k, 0)) *
                                     core::kArrivalScale);
        }
      }

      // TRP + PP
      {
        Request rq;
        rq.kind = RequestKind::kTrpPp;
        rq.circuit = w.lcs[i];
        rq.batch = w.batches[i];
        const Response r = eng.call(rq);
        const core::LocalPredictions pred = model.predict_local(b, h);
        ASSERT_EQ(r.values.size(), b.cell_rows.size());
        std::vector<double> rates(w.lcs[i]->netlist.num_nodes(), 0.0);
        for (std::size_t k = 0; k < r.values.size(); ++k) {
          const double t = static_cast<double>(pred.toggle.at(k, 0));
          EXPECT_EQ(r.values[k], t);
          rates[static_cast<std::size_t>(b.cell_rows[k])] = t;
        }
        EXPECT_EQ(r.power_uw,
                  power::analyze_power(w.lcs[i]->netlist, rates).total_uw);
      }

      // EMBED
      {
        Request rq;
        rq.kind = RequestKind::kEmbed;
        rq.batch = w.batches[i];
        const Response r = eng.call(rq);
        EXPECT_EQ(r.embedding, model.netlist_embedding(b, h).data());
        EXPECT_EQ(r.rtl_embedding,
                  model.rtl_embedding(b.module_text).data());
      }

      // FEP-rank
      {
        Request rq;
        rq.kind = RequestKind::kFepRank;
        rq.rtl_text = w.lcs[i]->module_text;
        rq.pool = "pool";
        const Response r = eng.call(rq);
        ASSERT_EQ(r.ranking.size(), w.batches.size());
        const Tensor r_e = model.rtl_embedding(w.lcs[i]->module_text);
        for (const auto& entry : r.ranking) {
          const core::CircuitBatch& mb = *w.batches[entry.index];
          const Tensor n_e =
              model.netlist_embedding(mb, model.node_embeddings(mb));
          EXPECT_EQ(entry.score, model.pair_score(r_e, n_e));
          EXPECT_EQ(entry.name, mb.name);
        }
      }
    }
  }
  const serve::CacheStats st = cache.stats();
  EXPECT_GT(st.hits, 0u) << "warm pass should have hit the cache";
}

TEST(ServeEngine, EngineWithoutCacheMatchesEngineWithCache) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine cached(reg, &cache, {});
  InferenceEngine direct(reg, /*cache=*/nullptr, {});
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];
  const Response a = cached.call(rq);  // populates cache
  const Response b = cached.call(rq);  // served from cache
  const Response c = direct.call(rq);  // compute-always
  EXPECT_EQ(a.embedding, c.embedding);
  EXPECT_EQ(b.embedding, c.embedding);
  EXPECT_EQ(a.rtl_embedding, c.rtl_embedding);
  EXPECT_EQ(b.rtl_embedding, c.rtl_embedding);
}

TEST(ServeEngine, PlanRequestsMatchBatchRequestsBitIdentically) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});

  for (std::size_t i = 0; i < w.lcs.size(); ++i) {
    SCOPED_TRACE(w.batches[i]->name);
    const auto pl = std::make_shared<plan::ExecutionPlan>(
        plan::compile(w.lcs[i]->netlist, *w.batches[i]));

    Request via_batch;
    via_batch.kind = RequestKind::kEmbed;
    via_batch.batch = w.batches[i];
    const Response rb = eng.call(via_batch);

    // Fresh cache so the plan request recomputes through the hash-consed
    // cone path rather than hitting the node-level entry just stored.
    cache.clear();

    Request via_plan;
    via_plan.kind = RequestKind::kEmbed;
    via_plan.plan = pl;
    const Response rp = eng.call(via_plan);
    EXPECT_EQ(rp.embedding, rb.embedding);
    EXPECT_EQ(rp.rtl_embedding, rb.rtl_embedding);
    EXPECT_FALSE(rp.degraded);

    Request atp_batch;
    atp_batch.kind = RequestKind::kAtp;
    atp_batch.batch = w.batches[i];
    const Response ab = eng.call(atp_batch);
    cache.clear();
    Request atp_plan;
    atp_plan.kind = RequestKind::kAtp;
    atp_plan.plan = pl;
    const Response ap = eng.call(atp_plan);
    EXPECT_EQ(ap.values, ab.values);
  }
  // The plan path actually ran: cone rows landed in the cache.
  EXPECT_GT(cache.stats().inserts, 0u);
}

// ---------------------------------------------------------------------------
// typed overload behavior

TEST(ServeEngine, QueueFullRejectsWithTypedError) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.max_batch = 8;        // a lone request waits out max_delay...
  ec.max_delay_ms = 1000;  // ...so the queue stays occupied while we fill it
  ec.queue_capacity = 2;
  InferenceEngine eng(reg, nullptr, ec);
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];
  std::future<Response> f1 = eng.submit(rq);
  std::future<Response> f2 = eng.submit(rq);
  // At full utilization a low-priority EMBED is shed by admission control
  // before it can reach the hard capacity bound...
  try {
    eng.submit(rq);
    FAIL() << "third submit should be shed from the full capacity-2 queue";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "shed") << e.what();
    EXPECT_EQ(error_class(e), ErrorClass::kTransient);
  }
  // ...while a high-priority ATP bypasses shedding and hits queue_full.
  Request atp;
  atp.kind = RequestKind::kAtp;
  atp.batch = w.batches[0];
  try {
    eng.submit(atp);
    FAIL() << "high-priority submit should overflow the capacity-2 queue";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "queue_full") << e.what();
    EXPECT_EQ(e.context_value("capacity"), "2") << e.what();
  }
  eng.stop();  // drains: the two queued requests still get served
  EXPECT_FALSE(f1.get().embedding.empty());
  EXPECT_FALSE(f2.get().embedding.empty());
  EXPECT_EQ(eng.metrics().snapshot().rejected, 1u);
  EXPECT_EQ(eng.metrics().snapshot().shed, 1u);
  try {
    eng.submit(rq);
    FAIL() << "submit after stop() should be rejected";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "stopped") << e.what();
  }
}

TEST(ServeEngine, ExpiredDeadlineFailsTypedInsteadOfServing) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.max_batch = 8;
  ec.max_delay_ms = 120;  // lone request sits in the queue for 120ms
  InferenceEngine eng(reg, nullptr, ec);
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];
  rq.deadline_ms = 10;  // expires long before the batch window closes
  try {
    eng.call(rq);
    FAIL() << "expired request should not be served";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "deadline_expired") << e.what();
    EXPECT_FALSE(e.transient())
        << "an expired deadline must not be auto-retried";
  }
  EXPECT_EQ(eng.metrics().snapshot().deadline_expired, 1u);
}

TEST(ServeEngine, BadRequestsGetTypedErrors) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  InferenceEngine eng(reg, nullptr, {});

  Request no_circuit;
  no_circuit.kind = RequestKind::kAtp;
  try {
    eng.call(no_circuit);
    FAIL() << "ATP without circuit/batch served";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "bad_request") << e.what();
  }

  Request bad_pool;
  bad_pool.kind = RequestKind::kFepRank;
  bad_pool.rtl_text = "module m; endmodule";
  bad_pool.pool = "nope";
  try {
    eng.call(bad_pool);
    FAIL() << "unknown pool served";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "unknown_pool") << e.what();
    EXPECT_EQ(e.context_value("pool"), "nope") << e.what();
  }

  Request bad_model;
  bad_model.kind = RequestKind::kEmbed;
  bad_model.batch = w.batches[0];
  bad_model.model = "missing";
  EXPECT_THROW(eng.call(bad_model), ContextError);
}

// ---------------------------------------------------------------------------
// fault injection: a poisoned request fails alone, the queue keeps serving

TEST(ServeFault, PoisonedDispatchFailsExactlyOneRequest) {
  const ServeWorld& w = world();
  FaultGuard guard;
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});

  testing::arm_fault("serve.engine.dispatch");
  std::vector<std::future<Response>> futs;
  Request rq;
  rq.kind = RequestKind::kEmbed;
  for (std::size_t i = 0; i < 4; ++i) {
    rq.batch = w.batches[i % w.batches.size()];
    futs.push_back(eng.submit(rq));
  }
  int injected = 0, ok = 0;
  for (auto& f : futs) {
    try {
      f.get();
      ++ok;
    } catch (const testing::InjectedFault&) {
      ++injected;
    }
  }
  EXPECT_EQ(injected, 1) << "exactly the poisoned request must fail";
  EXPECT_EQ(ok, 3) << "the rest of the batch must be served";

  // The engine is not wedged: later requests succeed.
  rq.batch = w.batches[0];
  EXPECT_FALSE(eng.call(rq).embedding.empty());
  EXPECT_EQ(eng.queue_depth(), 0u);
}

TEST(ServeFault, CacheInsertFaultPoisonsOnlyThatRequest) {
  const ServeWorld& w = world();
  FaultGuard guard;
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];

  testing::arm_fault("serve.cache.insert");
  EXPECT_THROW(eng.call(rq), testing::InjectedFault);
  testing::disarm_all_faults();

  // Same request now serves and matches the direct computation.
  const Response r = eng.call(rq);
  const core::MossModel& model = w.session->model();
  const core::CircuitBatch& b = *w.batches[0];
  EXPECT_EQ(r.embedding,
            model.netlist_embedding(b, model.node_embeddings(b)).data());
}

// ---------------------------------------------------------------------------
// registry hot-swap

TEST(ServeRegistry, HotSwapRoutesNewRequestsAndBumpsVersion) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  EXPECT_EQ(reg.install("default", w.session), 1u);

  std::vector<std::string> corpus;
  for (const auto& lc : w.lcs) corpus.push_back(lc->module_text);
  const auto replacement = serve::MossSession::load(w.cfg, corpus, "");
  EXPECT_NE(replacement->uid(), w.session->uid())
      << "every session needs a process-unique uid";

  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];
  EXPECT_EQ(eng.call(rq).session_uid, w.session->uid());

  EXPECT_EQ(reg.install("default", replacement), 2u);
  EXPECT_EQ(eng.call(rq).session_uid, replacement->uid());

  const auto infos = reg.list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "default");
  EXPECT_EQ(infos[0].version, 2u);
  EXPECT_EQ(infos[0].uid, replacement->uid());

  EXPECT_TRUE(reg.remove("default"));
  EXPECT_FALSE(reg.remove("default"));
  try {
    reg.get("default");
    FAIL() << "removed model still served";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("model"), "default") << e.what();
  }
}

// ---------------------------------------------------------------------------
// metrics

TEST(ServeMetrics, HistogramQuantilesAndDumps) {
  serve::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(100.0);  // ~all in one bucket
  h.record(100000.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_LE(h.quantile_us(0.5), 256.0);
  EXPECT_GE(h.quantile_us(0.999), 65536.0);
  EXPECT_GT(h.mean_us(), 0.0);
  // Interpolated, not the bucket upper edge: 100 us lands in [64,128), so
  // the median must stay inside that bucket instead of reporting 128.
  EXPECT_GE(h.quantile_us(0.5), 64.0);
  EXPECT_LT(h.quantile_us(0.5), 128.0);
  // The unbounded last bucket must never fabricate a latency beyond the
  // observed maximum.
  EXPECT_LE(h.quantile_us(0.999), h.max_us());
  EXPECT_LE(h.quantile_us(1.0), h.max_us());

  serve::LatencyHistogram tail;
  tail.record(1.0);
  tail.record(5.0e9);  // ~83 min: beyond the last finite bucket edge
  // Pre-fix this reported the last bucket's power-of-two edge (~2^32 us)
  // regardless of what was observed; now it is clamped to max_us.
  EXPECT_LE(tail.quantile_us(0.99), tail.max_us());

  serve::ServeMetrics m;
  m.record(RequestKind::kAtp, 1500.0, true);
  m.record(RequestKind::kFepRank, 900.0, false);
  m.record_rejected();
  m.record_batch(2);
  m.set_cache_counters(3, 4, 1, 4096, 2, 5);
  const serve::MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.total_ok, 1u);
  EXPECT_EQ(snap.total_errors, 1u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.cache_hits, 3u);
  EXPECT_EQ(snap.cache_oversize_rejections, 5u);

  const std::string text = m.text();
  EXPECT_NE(text.find("endpoint"), std::string::npos) << text;
  EXPECT_NE(text.find("atp"), std::string::npos) << text;
  EXPECT_NE(text.find("cache:"), std::string::npos) << text;
  EXPECT_NE(text.find("5 oversize"), std::string::npos) << text;
  const std::string json = m.json();
  EXPECT_EQ(json.front(), '{') << json;
  EXPECT_NE(json.find("\"fep_rank\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"oversize_rejections\":5"), std::string::npos) << json;
}

TEST(ServeMetrics, EngineCountsRequestsPerEndpoint) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, {});
  Request rq;
  rq.kind = RequestKind::kEmbed;
  rq.batch = w.batches[0];
  eng.call(rq);
  eng.call(rq);
  const std::string json = eng.metrics_json();
  EXPECT_NE(json.find("\"embed\""), std::string::npos) << json;
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.total_ok, 2u);
  EXPECT_EQ(
      snap.endpoints[static_cast<std::size_t>(RequestKind::kEmbed)].requests,
      2u);
}

// ---------------------------------------------------------------------------
// VERIFY: the SAT-oracle latency class. No model session is ever touched —
// every test below runs against an empty registry on purpose.

std::shared_ptr<const data::LabeledCircuit> mutant_of(
    const data::LabeledCircuit& golden, std::uint64_t seed) {
  Rng rng(seed);
  const auto muts = data::sample_mutations(golden.netlist, 1, rng);
  auto lc = std::make_shared<data::LabeledCircuit>(golden);
  lc->netlist = data::apply_mutation(golden.netlist, muts.at(0), "__mut");
  return lc;
}

TEST(ServeVerify, EquivalentAndInequivalentEndToEnd) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  InferenceEngine eng(reg, nullptr, {});

  Request rq;
  rq.kind = RequestKind::kVerify;
  rq.circuit = w.lcs[0];
  rq.circuit_b = w.lcs[0];
  const Response same = eng.call(rq);
  EXPECT_EQ(same.kind, RequestKind::kVerify);
  EXPECT_EQ(same.verdict, "EQUIVALENT");
  EXPECT_TRUE(same.verify_cex.empty());
  EXPECT_FALSE(same.verify_detail.empty());

  // A seeded mutant must be PROVEN different, and the proof must carry a
  // rendered counterexample (replayed through aig_sim inside the oracle).
  bool proven_inequivalent = false;
  for (std::uint64_t seed = 1; seed <= 8 && !proven_inequivalent; ++seed) {
    rq.circuit_b = mutant_of(*w.lcs[0], seed);
    const Response r = eng.call(rq);
    if (r.verdict != "NOT_EQUIVALENT") continue;  // mutation hit a don't-care
    proven_inequivalent = true;
    EXPECT_FALSE(r.verify_cex.empty()) << r.verify_detail;
    EXPECT_NE(r.verify_detail.find("counterexample"), std::string::npos)
        << r.verify_detail;
  }
  EXPECT_TRUE(proven_inequivalent)
      << "no mutant of srv_alu was proven inequivalent in 8 seeds";

  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_GE(
      snap.endpoints[static_cast<std::size_t>(RequestKind::kVerify)].requests,
      2u);
  EXPECT_NE(eng.metrics_json().find("\"verify\""), std::string::npos);
  EXPECT_NE(eng.metrics().text().find("verify"), std::string::npos);
}

TEST(ServeVerify, MissingOperandIsTypedBadRequest) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  InferenceEngine eng(reg, nullptr, {});
  Request rq;
  rq.kind = RequestKind::kVerify;
  rq.circuit = w.lcs[0];  // circuit_b deliberately absent
  try {
    eng.call(rq);
    FAIL() << "VERIFY without a second circuit must be a typed bad_request";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "bad_request") << e.what();
  }
}

TEST(ServeVerify, ConflictBudgetExhaustionIsPermanentVerifyTimeout) {
  const ServeWorld& w = world();
  // Pick a pair the solver provably cannot settle within ONE conflict.
  // The oracle is deterministic, so probing it directly with the same
  // seed/budget/frames the engine will use predicts the engine exactly.
  std::shared_ptr<const data::LabeledCircuit> golden, hard;
  for (std::size_t c = 1; c < w.lcs.size() && !hard; ++c) {
    for (std::uint64_t seed = 1; seed <= 8 && !hard; ++seed) {
      auto cand = mutant_of(*w.lcs[c], seed);
      sat::OracleConfig oc;
      oc.conflict_budget = 1;
      const sat::EquivOracle probe(oc);
      const sat::OracleResult res =
          probe.check(w.lcs[c]->netlist, cand->netlist);
      if (res.verdict == sat::Verdict::kUnknown &&
          res.unknown_reason == sat::UnknownReason::kConflictBudget) {
        hard = std::move(cand);
        golden = w.lcs[c];
      }
    }
  }
  ASSERT_TRUE(hard) << "no probe pair exhausted a 1-conflict budget";

  ModelRegistry reg;
  serve::EngineConfig ec;
  ec.verify_conflict_limit = 1;  // also clamps any client-supplied budget
  InferenceEngine eng(reg, nullptr, ec);
  Request rq;
  rq.kind = RequestKind::kVerify;
  rq.circuit = golden;
  rq.circuit_b = hard;
  rq.verify_conflict_budget = 999999;  // clamped down to the engine limit
  try {
    eng.call(rq);
    FAIL() << "1-conflict budget must exhaust into a typed verify_timeout";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("reason"), "verify_timeout") << e.what();
    // Deterministic search: retrying with the same budget cannot succeed,
    // so the failure class is permanent, unlike a deadline or a shed.
    EXPECT_FALSE(e.transient()) << e.what();
  }
  EXPECT_EQ(eng.metrics().snapshot().verify_timeouts, 1u);
}

TEST(ServeVerify, DepthBoundIsTypedUnknownResponseNotAnError) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  serve::EngineConfig ec;
  ec.verify_max_frames = 0;  // BMC disabled: sequential cut-SAT -> UNKNOWN
  InferenceEngine eng(reg, nullptr, ec);
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 8 && !exercised; ++seed) {
    Request rq;
    rq.kind = RequestKind::kVerify;
    rq.circuit = w.lcs[1];  // srv_crc is sequential
    rq.circuit_b = mutant_of(*w.lcs[1], seed);
    const Response r = eng.call(rq);  // must NOT throw: UNKNOWN is an answer
    if (r.verdict != "UNKNOWN") continue;  // cut proved this mutant outright
    exercised = true;
    EXPECT_EQ(r.verify_frames, 0) << r.verify_detail;
    EXPECT_TRUE(r.verify_cex.empty());
    EXPECT_NE(r.verify_detail.find("depth"), std::string::npos)
        << r.verify_detail;
  }
  EXPECT_TRUE(exercised)
      << "no crc mutant reached the depth bound in 8 seeds";
}

TEST(ServeVerify, InflightConflictBudgetCapShedsAndReleases) {
  const ServeWorld& w = world();
  Request rq;
  rq.kind = RequestKind::kVerify;
  rq.circuit = w.lcs[0];
  rq.circuit_b = w.lcs[0];

  // Cap below one request's budget: admission must refuse it up front with
  // the VERIFY-specific transient error (counted as verify_shed), without
  // ever reaching the solver.
  {
    ModelRegistry reg;
    serve::EngineConfig ec;
    ec.verify_conflict_limit = 50000;
    ec.verify_inflight_budget = 10;
    InferenceEngine eng(reg, nullptr, ec);
    try {
      eng.submit(rq);
      FAIL() << "VERIFY above the in-flight conflict cap must be refused";
    } catch (const ContextError& e) {
      EXPECT_EQ(e.context_value("reason"), "verify_capacity") << e.what();
      EXPECT_EQ(error_class(e), ErrorClass::kTransient);
    }
    EXPECT_EQ(eng.metrics().snapshot().verify_shed, 1u);
  }

  // Cap exactly one request wide: back-to-back calls only both succeed if
  // the reservation is released when a request settles.
  {
    ModelRegistry reg;
    serve::EngineConfig ec;
    ec.verify_inflight_budget = ec.verify_conflict_limit;
    InferenceEngine eng(reg, nullptr, ec);
    EXPECT_EQ(eng.call(rq).verdict, "EQUIVALENT");
    EXPECT_EQ(eng.call(rq).verdict, "EQUIVALENT");
    EXPECT_EQ(eng.metrics().snapshot().verify_shed, 0u);
  }
}

TEST(ServeVerify, ProtocolLineRoundTrips) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  InferenceEngine eng(reg, nullptr, {});
  const auto mut = mutant_of(*w.lcs[0], 1);
  serve::ProtocolConfig pcfg;
  pcfg.load_design = [&](const std::string& name)
      -> std::shared_ptr<const data::LabeledCircuit> {
    if (name == "golden") return w.lcs[0];
    if (name == "mutant") return mut;
    return nullptr;
  };
  serve::ProtocolHandler handler(eng, std::move(pcfg));

  const std::string same = handler.handle_line("VERIFY golden golden");
  EXPECT_EQ(same.rfind("OK VERIFY EQUIVALENT", 0), 0u) << same;
  EXPECT_NE(same.find("conflicts="), std::string::npos) << same;
  EXPECT_NE(same.find("frames="), std::string::npos) << same;

  const std::string one_operand = handler.handle_line("VERIFY golden");
  EXPECT_EQ(one_operand.rfind("ERR bad_request", 0), 0u) << one_operand;
  const std::string unknown = handler.handle_line("VERIFY golden nosuch");
  EXPECT_EQ(unknown.rfind("ERR unknown_design", 0), 0u) << unknown;

  const std::string help = handler.handle_line("HELP");
  EXPECT_NE(help.find("VERIFY"), std::string::npos);
}

// ---------------------------------------------------------------------------
// cross-request fused batching: one stacked propagation per (kind, model)
// group per dispatch window, bit-identical to the sequential path

/// Submit `reqs` back-to-back (they land in one dispatch window when the
/// engine's max_batch >= reqs.size()) and wait for every response.
/// Failures propagate to the caller via futures' exceptions.
std::vector<Response> run_window(InferenceEngine& eng,
                                 const std::vector<Request>& reqs) {
  std::vector<std::future<Response>> futs;
  futs.reserve(reqs.size());
  for (const Request& r : reqs) futs.push_back(eng.submit(r));
  std::vector<Response> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

void expect_bit_identical(const Response& fused, const Response& seq) {
  EXPECT_EQ(fused.kind, seq.kind);
  EXPECT_EQ(fused.values, seq.values);
  EXPECT_EQ(fused.power_uw, seq.power_uw);
  EXPECT_EQ(fused.embedding, seq.embedding);
  EXPECT_EQ(fused.rtl_embedding, seq.rtl_embedding);
  ASSERT_EQ(fused.ranking.size(), seq.ranking.size());
  for (std::size_t i = 0; i < fused.ranking.size(); ++i) {
    EXPECT_EQ(fused.ranking[i].index, seq.ranking[i].index);
    EXPECT_EQ(fused.ranking[i].name, seq.ranking[i].name);
    EXPECT_EQ(fused.ranking[i].score, seq.ranking[i].score);
  }
  EXPECT_FALSE(fused.degraded);
  EXPECT_EQ(fused.degraded, seq.degraded);
}

/// A mixed-kind window covering every model-backed kind and all three
/// circuits: one ATP/TRP+PP/EMBED per circuit plus one FEP-rank per query
/// text — 12 requests, four fusable groups.
std::vector<Request> mixed_window(const ServeWorld& w) {
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < w.lcs.size(); ++i) {
    Request atp;
    atp.kind = RequestKind::kAtp;
    atp.batch = w.batches[i];
    reqs.push_back(atp);
    Request trp;
    trp.kind = RequestKind::kTrpPp;
    trp.circuit = w.lcs[i];
    trp.batch = w.batches[i];
    reqs.push_back(trp);
    Request emb;
    emb.kind = RequestKind::kEmbed;
    emb.batch = w.batches[i];
    reqs.push_back(emb);
    Request rank;
    rank.kind = RequestKind::kFepRank;
    rank.rtl_text = w.lcs[i]->module_text;
    rank.pool = "pool";
    reqs.push_back(rank);
  }
  return reqs;
}

TEST(ServeFused, FusedWindowBitIdenticalToSequentialAllFourKinds) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  const std::vector<Request> reqs = mixed_window(w);

  serve::EngineConfig fused_cfg;
  fused_cfg.fused_batching = true;
  fused_cfg.max_batch = reqs.size();
  fused_cfg.max_delay_ms = 50;  // window closes when all requests are queued
  serve::EngineConfig seq_cfg = fused_cfg;
  seq_cfg.fused_batching = false;

  EmbeddingCache fused_cache(8u << 20);
  EmbeddingCache seq_cache(8u << 20);
  InferenceEngine fused_eng(reg, &fused_cache, fused_cfg);
  InferenceEngine seq_eng(reg, &seq_cache, seq_cfg);
  fused_eng.register_pool("pool", w.batches);
  seq_eng.register_pool("pool", w.batches);

  for (int pass = 0; pass < 2; ++pass) {  // pass 0: cold caches, 1: warm
    SCOPED_TRACE(pass == 0 ? "cold" : "warm");
    const std::vector<Response> fused = run_window(fused_eng, reqs);
    const std::vector<Response> seq = run_window(seq_eng, reqs);
    ASSERT_EQ(fused.size(), seq.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      expect_bit_identical(fused[i], seq[i]);
    }
  }

  const serve::MetricsSnapshot snap = fused_eng.metrics().snapshot();
  EXPECT_GT(snap.fused_batches, 0u) << "cold pass must stack a propagation";
  EXPECT_GT(snap.fused_rows, 0u);
  EXPECT_GT(snap.fused_requests, 0u);
  EXPECT_EQ(snap.fused_retries, 0u) << "no member should have gone solo";
  EXPECT_EQ(seq_eng.metrics().snapshot().fused_batches, 0u)
      << "the sequential engine must never stack";
}

TEST(ServeFused, AdversarialRowCountsSingleMaxBatchAndDuplicates) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);

  const auto run_pair = [&](const std::vector<Request>& reqs) {
    serve::EngineConfig fc;
    fc.fused_batching = true;
    fc.max_batch = std::max<std::size_t>(reqs.size(), 1);
    fc.max_delay_ms = 50;
    serve::EngineConfig sc = fc;
    sc.fused_batching = false;
    EmbeddingCache ca(8u << 20), cb(8u << 20);
    InferenceEngine fe(reg, &ca, fc), se(reg, &cb, sc);
    fe.register_pool("pool", w.batches);
    se.register_pool("pool", w.batches);
    const std::vector<Response> fr = run_window(fe, reqs);
    const std::vector<Response> sr = run_window(se, reqs);
    ASSERT_EQ(fr.size(), sr.size());
    for (std::size_t i = 0; i < fr.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      expect_bit_identical(fr[i], sr[i]);
    }
  };

  {
    SCOPED_TRACE("window of 1 (singleton demotes to the solo path)");
    Request one;
    one.kind = RequestKind::kEmbed;
    one.batch = w.batches[0];
    run_pair({one});
  }
  {
    SCOPED_TRACE("window of 1 FEP-rank (pool members still stack)");
    Request rank;
    rank.kind = RequestKind::kFepRank;
    rank.rtl_text = w.lcs[0]->module_text;
    rank.pool = "pool";
    run_pair({rank});
  }
  {
    SCOPED_TRACE("max_batch window of one kind with duplicate circuits");
    std::vector<Request> reqs;
    for (std::size_t i = 0; i < 8; ++i) {
      Request atp;
      atp.kind = RequestKind::kAtp;
      atp.batch = w.batches[i % w.batches.size()];  // duplicates dedupe
      reqs.push_back(atp);
    }
    run_pair(reqs);
  }
  {
    SCOPED_TRACE("mixed kinds in one window");
    run_pair(mixed_window(w));
  }
}

TEST(ServeFused, KernelThreadCountsOneAndSevenBitIdentical) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  const std::size_t restore = tensor::kernels::threads();
  const std::vector<Request> reqs = mixed_window(w);

  serve::EngineConfig fc;
  fc.fused_batching = true;
  fc.max_batch = reqs.size();
  fc.max_delay_ms = 50;

  std::vector<std::vector<Response>> per_threads;
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}}) {
    tensor::kernels::set_threads(n);
    EmbeddingCache cache(8u << 20);
    InferenceEngine eng(reg, &cache, fc);
    eng.register_pool("pool", w.batches);
    per_threads.push_back(run_window(eng, reqs));
  }
  tensor::kernels::set_threads(restore);

  ASSERT_EQ(per_threads[0].size(), per_threads[1].size());
  for (std::size_t i = 0; i < per_threads[0].size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_bit_identical(per_threads[0][i], per_threads[1][i]);
  }
}

TEST(ServeFused, DispatchFaultInsideFusedGroupFailsExactlyOneMember) {
  const ServeWorld& w = world();
  FaultGuard guard;
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 4;
  ec.max_delay_ms = 50;
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, ec);

  testing::arm_fault("serve.engine.dispatch");
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < 4; ++i) {
    Request rq;
    rq.kind = RequestKind::kEmbed;
    rq.batch = w.batches[i % w.batches.size()];
    reqs.push_back(rq);
  }
  std::vector<std::future<Response>> futs;
  for (const Request& r : reqs) futs.push_back(eng.submit(r));
  int injected = 0, ok = 0;
  for (auto& f : futs) {
    try {
      f.get();
      ++ok;
    } catch (const testing::InjectedFault&) {
      ++injected;
    }
  }
  EXPECT_EQ(injected, 1) << "exactly the poisoned member must fail";
  EXPECT_EQ(ok, 3) << "its batchmates must still be served fused";
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_GE(snap.fused_requests, 3u);
  EXPECT_EQ(snap.fused_retries, 0u)
      << "a pre-check fault settles up front, not via solo retry";
}

TEST(ServeFused, ForwardFaultInFusedComputeRetriesEveryMemberSolo) {
  const ServeWorld& w = world();
  FaultGuard guard;
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 3;
  ec.max_delay_ms = 50;
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, ec);

  // One-shot fault inside the *stacked* forward: the whole fused compute
  // throws, and every member must be retried solo (where the consumed
  // fault no longer fires) — one poisoned propagation never takes its
  // batchmates down.
  testing::arm_fault("serve.session.forward");
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < 3; ++i) {
    Request rq;
    rq.kind = RequestKind::kEmbed;
    rq.batch = w.batches[i];
    reqs.push_back(rq);
  }
  const std::vector<Response> rs = run_window(eng, reqs);
  const core::MossModel& model = w.session->model();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    SCOPED_TRACE(w.batches[i]->name);
    const core::CircuitBatch& b = *w.batches[i];
    EXPECT_EQ(rs[i].embedding,
              model.netlist_embedding(b, model.node_embeddings(b)).data());
  }
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.fused_retries, 3u)
      << "every member of the poisoned group must have gone solo";
  EXPECT_EQ(snap.total_errors, 0u);
}

TEST(ServeFused, MetricsExposeOccupancyHistogramInTextAndJson) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 3;
  ec.max_delay_ms = 50;
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, ec);

  std::vector<Request> reqs;
  for (std::size_t i = 0; i < 3; ++i) {
    Request rq;
    rq.kind = RequestKind::kEmbed;
    rq.batch = w.batches[i];
    reqs.push_back(rq);
  }
  run_window(eng, reqs);

  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  ASSERT_GT(snap.fused_batches, 0u);
  EXPECT_GT(snap.fused_rows, 0u);
  EXPECT_EQ(snap.fused_requests, 3u);
  std::uint64_t occ_total = 0;
  for (const std::uint64_t c : snap.fused_occupancy) occ_total += c;
  EXPECT_EQ(occ_total, snap.fused_batches)
      << "every stacked propagation lands in exactly one occupancy bucket";
  // All three circuits fused into one propagation -> occupancy bucket 3.
  EXPECT_EQ(snap.fused_occupancy[2], 1u);

  const std::string text = eng.metrics_text();
  EXPECT_NE(text.find("fused:"), std::string::npos) << text;
  const std::string json = eng.metrics_json();
  EXPECT_NE(json.find("\"fused_batches\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fused_rows\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"occupancy\":["), std::string::npos) << json;
}

TEST(ServeFused, RowCapChunksTheWindowWithoutChangingResults) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 3;
  ec.max_delay_ms = 50;
  ec.fused_max_rows = 1;  // every unit gets its own chunk (cap still packs
                          // at least one unit, or nothing would ever run)
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, ec);

  std::vector<Request> reqs;
  for (std::size_t i = 0; i < 3; ++i) {
    Request rq;
    rq.kind = RequestKind::kEmbed;
    rq.batch = w.batches[i];
    reqs.push_back(rq);
  }
  const std::vector<Response> rs = run_window(eng, reqs);
  const core::MossModel& model = w.session->model();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    SCOPED_TRACE(w.batches[i]->name);
    const core::CircuitBatch& b = *w.batches[i];
    EXPECT_EQ(rs[i].embedding,
              model.netlist_embedding(b, model.node_embeddings(b)).data());
  }
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.fused_batches, 3u) << "a 1-row cap must chunk per unit";
  EXPECT_EQ(snap.fused_occupancy[0], 3u);
}

TEST(ServeFused, QueueExpiredMembersFailTypedBeforeFusing) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 16;      // 8 submits never fill the window...
  ec.max_delay_ms = 80;   // ...so it holds for 80ms, past every deadline
  EmbeddingCache cache(8u << 20);
  InferenceEngine eng(reg, &cache, ec);
  eng.register_pool("pool", w.batches);

  std::vector<std::future<Response>> futs;
  for (std::size_t i = 0; i < 8; ++i) {
    Request rq;
    rq.kind = RequestKind::kFepRank;
    rq.rtl_text = w.lcs[i % w.lcs.size()]->module_text;
    rq.pool = "pool";
    rq.deadline_ms = 5;
    futs.push_back(eng.submit(rq));
  }
  for (auto& f : futs) {
    try {
      f.get();
      FAIL() << "request expired in the queue must not be served";
    } catch (const ContextError& e) {
      EXPECT_EQ(e.context_value("reason"), "deadline_expired") << e.what();
      EXPECT_EQ(e.context_value("stage"), "queue") << e.what();
      EXPECT_FALSE(e.transient()) << e.what();
    }
  }
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.deadline_expired, futs.size());
  EXPECT_EQ(snap.fused_batches, 0u)
      << "an all-expired group must never reach the stacked compute";
  // The engine is not wedged afterwards.
  Request probe;
  probe.kind = RequestKind::kEmbed;
  probe.batch = w.batches[0];
  EXPECT_FALSE(eng.call(probe).embedding.empty());
}

TEST(ServeFused, PostSplitDeadlineRecheckFailsTypedPerVictim) {
  const ServeWorld& w = world();
  ModelRegistry reg;
  reg.install("default", w.session);
  serve::EngineConfig ec;
  ec.fused_batching = true;
  ec.max_batch = 64;
  ec.max_delay_ms = 200;
  ec.queue_capacity = 256;
  ec.threads = 1;  // groups run one after another on a single worker
  EmbeddingCache cache(32u << 20);
  InferenceEngine eng(reg, &cache, ec);
  eng.register_pool("pool", w.batches);

  // One window: a large cold EMBED group (56 distinct RTL texts, each
  // forcing a fresh encoder forward at settle) dispatched FIRST (EMBED
  // outranks FEP-rank in the fused dispatch order), then the FEP-rank
  // group. The rank requests' queue pre-check compares against the
  // window-start timestamp, taken before the embed group's compute — it
  // passes. By the time the rank group has computed and split, the 1ms
  // deadline is long gone: the post-split re-check must fail each rank
  // victim typed (stage=dispatch), permanent, and never retried solo.
  std::vector<std::future<Response>> embeds;
  for (std::size_t i = 0; i < 56; ++i) {
    Request rq;
    rq.kind = RequestKind::kEmbed;
    rq.batch = w.batches[i % w.batches.size()];
    // Distinct non-comment prefix: canonical_rtl strips comments, so a
    // comment would collapse all 56 texts onto one cache key.
    rq.rtl_text = "wire q" + std::to_string(i) + ";\n" +
                  w.lcs[i % w.lcs.size()]->module_text;
    embeds.push_back(eng.submit(rq));
  }
  std::vector<std::future<Response>> ranks;
  for (std::size_t i = 0; i < 8; ++i) {
    Request rq;
    rq.kind = RequestKind::kFepRank;
    rq.rtl_text = w.lcs[i % w.lcs.size()]->module_text;
    rq.pool = "pool";
    rq.deadline_ms = 1;
    ranks.push_back(eng.submit(rq));
  }
  for (auto& f : embeds) EXPECT_FALSE(f.get().embedding.empty());
  std::size_t expired = 0;
  for (auto& f : ranks) {
    try {
      f.get();  // a rank that beat the clock is legal, just unexpected
    } catch (const ContextError& e) {
      EXPECT_EQ(e.context_value("reason"), "deadline_expired") << e.what();
      EXPECT_EQ(e.context_value("stage"), "dispatch") << e.what();
      EXPECT_FALSE(e.transient()) << e.what();
      ++expired;
    }
  }
  EXPECT_GE(expired, 1u) << "1ms deadlines behind a 56-request cold embed "
                            "group must hit the post-split re-check";
  const serve::MetricsSnapshot snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.deadline_expired, expired);
  EXPECT_EQ(snap.fused_retries, 0u)
      << "post-split expiry is permanent: victims must not be retried solo";
}

}  // namespace
}  // namespace moss
