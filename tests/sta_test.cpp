#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "rtl/parser.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

namespace moss::sta {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

TEST(Sta, SingleGateDelay) {
  Netlist nl(standard_library(), "g");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_cell("AND2", "g1", {a, b});
  nl.add_output("y", g);
  nl.finalize();
  StaOptions opts;
  TimingAnalysis ta(nl, opts);
  const auto& t = standard_library().by_name("AND2");
  const double in_at = opts.input_drive_res * nl.output_load(a);
  const double expect =
      in_at + t.intrinsic_delay[0] + t.drive_res * nl.output_load(g);
  EXPECT_NEAR(ta.arrival(g), expect, 1e-9);
  EXPECT_NEAR(ta.arrival(nl.outputs()[0]), expect, 1e-9);
  EXPECT_NEAR(ta.worst_arrival(), expect, 1e-9);
}

TEST(Sta, ChainIsMonotone) {
  // INV chain: arrival must strictly increase along the chain.
  Netlist nl(standard_library(), "chain");
  NodeId prev = nl.add_input("a");
  std::vector<NodeId> chain;
  for (int i = 0; i < 10; ++i) {
    prev = nl.add_cell("INV", "n" + std::to_string(i), {prev});
    chain.push_back(prev);
  }
  nl.add_output("y", prev);
  nl.finalize();
  TimingAnalysis ta(nl);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_GT(ta.arrival(chain[i]), ta.arrival(chain[i - 1]));
  }
}

TEST(Sta, FlopsArePathBoundaries) {
  // in -> [long chain] -> DFF -> INV -> out: the flop restarts timing, so
  // the INV's arrival is near clk-to-q, not chain depth.
  Netlist nl(standard_library(), "bound");
  NodeId prev = nl.add_input("a");
  for (int i = 0; i < 20; ++i) {
    prev = nl.add_cell("BUF", "c" + std::to_string(i), {prev});
  }
  const NodeId q = nl.add_cell("DFF", "q", {prev});
  const NodeId inv = nl.add_cell("INV", "n", {q});
  nl.add_output("y", inv);
  nl.finalize();
  TimingAnalysis ta(nl);
  EXPECT_GT(ta.flop_data_arrival(q), 300.0);
  EXPECT_LT(ta.arrival(inv), 150.0);
  // Worst endpoint is the flop's D pin, not the PO.
  EXPECT_EQ(ta.worst_endpoint(), q);
}

TEST(Sta, PinAsymmetryMatters) {
  // NAND3 pin A is slower than pin C; same driver arrival on both should
  // make the A-path critical.
  Netlist nl(standard_library(), "pins");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g = nl.add_cell("NAND3", "g", {a, b, c});
  nl.add_output("y", g);
  nl.finalize();
  TimingAnalysis ta(nl);
  const auto path = ta.critical_path(nl.outputs()[0]);
  // path: PO, NAND3, then the critical input — pin 0 (a) ties with b/c on
  // arrival but has the largest intrinsic delay.
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path[2].node, a);
}

TEST(Sta, CriticalPathEndsAtSource) {
  Netlist nl(standard_library(), "cp");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_cell("INV", "g1", {a});
  const NodeId g2 = nl.add_cell("INV", "g2", {g1});
  const NodeId q = nl.add_cell("DFF", "q", {g2});
  nl.add_output("y", q);
  nl.finalize();
  TimingAnalysis ta(nl);
  const auto path = ta.critical_path(q);
  // endpoint-first: q, g2, g1, a
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0].node, q);
  EXPECT_EQ(path[3].node, a);
  // Arrivals decrease along the walk (after the endpoint entry).
  for (std::size_t i = 2; i < path.size(); ++i) {
    EXPECT_LT(path[i].arrival_ps, path[i - 1].arrival_ps);
  }
}

TEST(Sta, HigherLoadMeansLaterArrival) {
  // Same gate, one with extra fanout -> later arrival.
  Netlist nl(standard_library(), "load");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_cell("INV", "light", {a});
  const NodeId g2 = nl.add_cell("INV", "heavy", {a});
  for (int i = 0; i < 6; ++i) {
    nl.add_cell("BUF", "sink" + std::to_string(i), {g2});
  }
  nl.add_output("y1", g1);
  nl.add_output("y2", g2);
  nl.finalize();
  TimingAnalysis ta(nl);
  EXPECT_GT(ta.arrival(g2), ta.arrival(g1));
}

TEST(Sta, SynthesizedPipelineArrivals) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module pipe (input clk, input rst, input [7:0] a, input [7:0] b,
                 output [7:0] y);
      reg [7:0] s1;
      reg [7:0] s2;
      always @(posedge clk) begin
        if (rst) s1 <= 8'd0;
        else s1 <= a + b;
        if (rst) s2 <= 8'd0;
        else s2 <= s1 ^ {s1[3:0], s1[7:4]};
      end
      assign y = s2;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  TimingAnalysis ta(nl);
  const auto flop_ats = ta.all_flop_arrivals();
  ASSERT_EQ(flop_ats.size(), nl.flops().size());
  for (const double at : flop_ats) {
    EXPECT_GE(at, 0.0);
    EXPECT_LT(at, 3000.0);
  }
  // The adder stage (s1) has a carry chain -> its MSB flop is later than
  // the XOR stage (s2) flops on average.
  double s1_max = 0, s2_max = 0;
  for (std::size_t i = 0; i < nl.flops().size(); ++i) {
    const auto& reg = nl.node(nl.flops()[i]).rtl_register;
    if (reg.rfind("s1", 0) == 0) s1_max = std::max(s1_max, flop_ats[i]);
    if (reg.rfind("s2", 0) == 0) s2_max = std::max(s2_max, flop_ats[i]);
  }
  EXPECT_GT(s1_max, s2_max);
}

TEST(StaSlew, SlewAwareIsStrictlySlower) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module s (input clk, input rst, input [7:0] a, input [7:0] b,
              output [7:0] y);
      reg [7:0] r;
      always @(posedge clk) begin
        if (rst) r <= 8'd0; else r <= (a + b) ^ r;
      end
      assign y = r;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const TimingAnalysis base(nl);
  StaOptions opts;
  opts.slew_aware = true;
  const TimingAnalysis derated(nl, opts);
  EXPECT_GT(derated.worst_arrival(), base.worst_arrival());
  // Slews are populated only in slew-aware mode, and grow with load.
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    EXPECT_DOUBLE_EQ(base.slew(id), 0.0);
    if (nl.is_comb_cell(id)) EXPECT_GT(derated.slew(id), 0.0);
  }
  // Monotonicity still holds with derating.
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (!nl.is_comb_cell(id)) continue;
    for (const NodeId f : nl.node(id).fanin) {
      EXPECT_GE(derated.arrival(id), derated.arrival(f));
    }
  }
}

TEST(StaSlew, HeavierLoadMeansMoreSlew) {
  Netlist nl(standard_library(), "slew");
  const NodeId a = nl.add_input("a");
  const NodeId light = nl.add_cell("INV", "light", {a});
  const NodeId heavy = nl.add_cell("INV", "heavy", {a});
  for (int i = 0; i < 5; ++i) {
    nl.add_cell("BUF", "sink" + std::to_string(i), {heavy});
  }
  nl.add_output("y1", light);
  nl.add_output("y2", heavy);
  nl.finalize();
  StaOptions opts;
  opts.slew_aware = true;
  const TimingAnalysis ta(nl, opts);
  EXPECT_GT(ta.slew(heavy), ta.slew(light));
}

TEST(Sta, TieCellsHaveZeroArrival) {
  Netlist nl(standard_library(), "tie");
  const NodeId t1 = nl.add_cell("TIE1", "t1", {});
  const NodeId g = nl.add_cell("INV", "g", {t1});
  nl.add_output("y", g);
  nl.finalize();
  TimingAnalysis ta(nl);
  EXPECT_EQ(ta.arrival(t1), 0.0);
  EXPECT_GT(ta.arrival(g), 0.0);
}

TEST(Sta, RejectsUnfinalized) {
  Netlist nl(standard_library(), "raw");
  nl.add_input("a");
  EXPECT_THROW(TimingAnalysis ta(nl), Error);
}

TEST(Sta, MalformedFlopWithoutDPinThrows) {
  // A flop cell type whose pin list lacks "D" must produce a typed Error
  // naming the cell, not an out-of-bounds fanin read (pin_index returns -1,
  // which used to be cast straight to size_t).
  cell::CellLibrary lib;
  cell::CellType ff;
  ff.name = "BADFF";
  ff.klass = cell::CellClass::kFlop;
  ff.num_inputs = 1;
  ff.intrinsic_delay = {30.0};
  ff.drive_res = 2.0;
  ff.pin_cap = {1.2};
  ff.pin_names = {"SI"};  // scan-style pin naming, no "D"
  lib.add(ff);

  Netlist nl(lib, "bad");
  const NodeId a = nl.add_input("a");
  nl.add_cell("BADFF", "q0", {a});
  nl.finalize();
  try {
    TimingAnalysis ta(nl);  // endpoint scan hits flop_data_arrival
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("BADFF"), std::string::npos);
    EXPECT_NE(msg.find("D pin"), std::string::npos);
  }
}

}  // namespace
}  // namespace moss::sta
