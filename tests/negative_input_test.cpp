// Negative-input robustness: malformed, truncated and hostile inputs to the
// RTL parser and the serve line protocol must produce typed errors (with
// line/col information from the parser) — never a crash, hang or silent
// acceptance. A later good input must still succeed (no poisoned state).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/corrupt.hpp"
#include "data/generators.hpp"
#include "rtl/parser.hpp"
#include "rtl/printer.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace moss {
namespace {

// ---------------------------------------------------------------------------
// RTL parser

void expect_parse_error(const std::string& src, const char* label) {
  SCOPED_TRACE(label);
  try {
    rtl::parse_verilog(src);
    FAIL() << "hostile input parsed without error";
  } catch (const rtl::ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line"), std::string::npos)
        << "parse errors must carry line information: " << msg;
    EXPECT_NE(msg.find("col"), std::string::npos)
        << "parse errors must carry column information: " << msg;
  }
}

TEST(NegativeRtl, MalformedInputsFailTypedWithLineAndColumn) {
  expect_parse_error("", "empty input");
  expect_parse_error("garbage", "not verilog at all");
  expect_parse_error("module", "truncated after keyword");
  expect_parse_error("module m", "truncated before port list");
  expect_parse_error("module m x", "junk after module name");
  expect_parse_error("module m(input a;", "unbalanced port list");
  expect_parse_error("module m(input a); assign", "truncated statement");
  expect_parse_error("module m(input a, output y); assign y = ; endmodule",
                     "missing expression");
  expect_parse_error("module m(input a, output y); assign y = a",
                     "missing semicolon and endmodule");
  expect_parse_error("module m(input a, output y); assign y = 5; endmodule",
                     "unsized literal");
  expect_parse_error("module m(input a, output y); assign y = (a; endmodule",
                     "unbalanced parenthesis");
  expect_parse_error("module m(input a, output y);\n\n  assign y = @; "
                     "endmodule",
                     "illegal character");
}

TEST(NegativeRtl, HostileBytesNeverCrash) {
  // None of these may crash; a ParseError is the only acceptable outcome.
  const std::vector<std::string> hostile = {
      std::string("module m\0(input a);", 19),       // embedded NUL
      "\xff\xfe\xfa garbage bytes",                  // invalid bytes
      "module m(input a); // unterminated comment",  // EOF inside comment
      "module m(input a); /* unterminated block",    // EOF inside block
      std::string(1 << 16, '('),                     // 64 KiB of parens
      "module " + std::string(4096, 'x') + "(input a);",  // huge identifier
  };
  for (const std::string& src : hostile) {
    EXPECT_THROW(rtl::parse_verilog(src), rtl::ParseError);
  }
}

TEST(NegativeRtl, ErrorLineNumbersPointAtTheOffendingLine) {
  try {
    rtl::parse_verilog("module m(input a, output y);\nassign y = a;\n"
                       "assign y = $bad;\nendmodule\n");
    FAIL() << "expected a parse error on line 3";
  } catch (const rtl::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(NegativeRtl, PortlessModuleIsLegalAndAccepted) {
  // `module foo;` without a port list is legal Verilog; the strictness
  // gate must only reject truncated/junk input, not this.
  const rtl::Module m = rtl::parse_verilog("module foo; endmodule");
  EXPECT_EQ(m.name, "foo");
  const rtl::Module m2 = rtl::parse_verilog(
      "module bar; wire w; assign w = 1'b1; endmodule");
  EXPECT_EQ(m2.name, "bar");
}

TEST(NegativeRtl, ParserRecoversAfterFailure) {
  EXPECT_THROW(rtl::parse_verilog("module m("), rtl::ParseError);
  // A failed parse must not poison the next one.
  const rtl::Module m = rtl::parse_verilog(
      "module good(input a, output y); assign y = a; endmodule");
  EXPECT_EQ(m.name, "good");
  // Deeply nested but valid expressions parse without smashing the stack.
  std::string deep = "module deep(input a, output y); assign y = ";
  for (int i = 0; i < 256; ++i) deep += '(';
  deep += 'a';
  for (int i = 0; i < 256; ++i) deep += ')';
  deep += "; endmodule";
  EXPECT_NO_THROW(rtl::parse_verilog(deep));
}

// ---------------------------------------------------------------------------
// Imperfection model — "valid but wrong" is the contract: every corruption
// pass's output must re-parse with no diagnostic, validate, and (when a
// corruption actually applied) differ textually from the clean source.

std::vector<rtl::Module> corruption_fixture_modules() {
  std::vector<rtl::Module> mods;
  for (const std::string& family : data::families()) {
    for (const int size : {1, 2}) {
      data::DesignSpec spec;
      spec.family = family;
      spec.size_hint = size;
      spec.seed = 11 + static_cast<std::uint64_t>(size);
      mods.push_back(data::generate(spec));
    }
  }
  return mods;
}

TEST(NegativeCorrupt, EveryPassRoundTripsThroughTheParser) {
  std::size_t fired[8] = {};
  for (const rtl::Module& m : corruption_fixture_modules()) {
    const std::string clean = rtl::to_verilog(m);
    for (const data::CorruptionKind kind : data::all_corruption_kinds()) {
      data::CorruptConfig cfg;
      cfg.seed = 21;
      cfg.severity = 3;
      cfg.passes = {kind};
      const data::CorruptedRtl corrupted = data::corrupt_module(m, cfg);
      SCOPED_TRACE(m.name + " / " + data::to_string(kind));
      ASSERT_NO_THROW(corrupted.module.validate());
      const std::string text = rtl::to_verilog(corrupted.module);
      rtl::Module reparsed;
      ASSERT_NO_THROW(reparsed = rtl::parse_verilog(text))
          << "corrupted RTL must stay syntactically valid:\n" << text;
      ASSERT_NO_THROW(reparsed.validate());
      if (!corrupted.applied.empty()) {
        EXPECT_NE(text, clean)
            << "an applied corruption must change the source";
        fired[static_cast<std::size_t>(kind)] += corrupted.applied.size();
      }
    }
  }
  // Every pass must find sites somewhere across the generator families —
  // a pass that never fires is dead code, not robustness coverage.
  for (const data::CorruptionKind kind : data::all_corruption_kinds()) {
    EXPECT_GT(fired[static_cast<std::size_t>(kind)], 0u)
        << data::to_string(kind) << " never applied on any fixture module";
  }
}

TEST(NegativeCorrupt, SameSeedIsByteIdenticalAcrossRuns) {
  for (const rtl::Module& m : corruption_fixture_modules()) {
    data::CorruptConfig cfg;
    cfg.seed = 77;
    cfg.severity = 4;
    const data::CorruptedRtl a = data::corrupt_module(m, cfg);
    const data::CorruptedRtl b = data::corrupt_module(m, cfg);
    EXPECT_EQ(rtl::to_verilog(a.module), rtl::to_verilog(b.module));
    EXPECT_EQ(data::provenance_json(m.name, cfg.seed, cfg.severity, a.applied),
              data::provenance_json(m.name, cfg.seed, cfg.severity,
                                    b.applied));
    // A different seed must be able to pick a different site set.
    cfg.seed = 78;
    const data::CorruptedRtl c = data::corrupt_module(m, cfg);
    EXPECT_EQ(a.applied.size(), c.applied.size());
  }
}

TEST(NegativeCorrupt, SeverityIsClampedToAvailableSites) {
  data::DesignSpec spec;
  spec.family = data::families().front();
  spec.size_hint = 1;
  spec.seed = 3;
  const rtl::Module m = data::generate(spec);
  data::CorruptConfig cfg;
  cfg.seed = 5;
  const std::size_t sites = data::count_corruption_sites(m, cfg);
  ASSERT_GT(sites, 0u);
  cfg.severity = static_cast<int>(sites) + 100;
  const data::CorruptedRtl corrupted = data::corrupt_module(m, cfg);
  EXPECT_EQ(corrupted.applied.size(), sites);
  cfg.severity = 1;
  EXPECT_EQ(data::corrupt_module(m, cfg).applied.size(), 1u);
  // Zero severity (or a module with no sites) returns the module unchanged.
  cfg.severity = 0;
  const data::CorruptedRtl untouched = data::corrupt_module(m, cfg);
  EXPECT_TRUE(untouched.applied.empty());
  EXPECT_EQ(rtl::to_verilog(untouched.module), rtl::to_verilog(m));
}

TEST(NegativeCorrupt, KindNamesRoundTripAndRejectUnknown) {
  for (const data::CorruptionKind kind : data::all_corruption_kinds()) {
    data::CorruptionKind parsed;
    ASSERT_TRUE(data::corruption_kind_from_string(data::to_string(kind),
                                                  &parsed));
    EXPECT_EQ(parsed, kind);
  }
  data::CorruptionKind parsed = data::CorruptionKind::kDropReset;
  EXPECT_FALSE(data::corruption_kind_from_string("solar_flare", &parsed));
  EXPECT_EQ(parsed, data::CorruptionKind::kDropReset) << "out left untouched";
}

// ---------------------------------------------------------------------------
// serve protocol — malformed and hostile request lines. The design loader
// always returns null, so no session is needed: every hostile line must be
// answered before (or instead of) real inference.

class NegativeProtocol : public ::testing::Test {
 protected:
  NegativeProtocol() : engine_(registry_, nullptr, {}) {
    serve::ProtocolConfig pcfg;
    pcfg.load_design = [](const std::string&)
        -> std::shared_ptr<const data::LabeledCircuit> { return nullptr; };
    handler_ =
        std::make_unique<serve::ProtocolHandler>(engine_, std::move(pcfg));
  }

  std::string code_of(const std::string& line) {
    const std::string resp = handler_->handle_line(line);
    EXPECT_EQ(resp.rfind("ERR ", 0), 0u)
        << "expected a typed error for: " << line << " got: " << resp;
    const std::size_t sp = resp.find(' ', 4);
    return resp.substr(4, sp == std::string::npos ? std::string::npos
                                                  : sp - 4);
  }

  serve::ModelRegistry registry_;
  serve::InferenceEngine engine_;
  std::unique_ptr<serve::ProtocolHandler> handler_;
};

TEST_F(NegativeProtocol, MalformedLinesGetTypedErrorsNeverThrow) {
  EXPECT_EQ(code_of(""), "bad_request");
  EXPECT_EQ(code_of("   \t  "), "bad_request");
  EXPECT_EQ(code_of("FROBNICATE x"), "bad_request");
  EXPECT_EQ(code_of("ATP"), "bad_request") << "missing operand";
  EXPECT_EQ(code_of("TRP"), "bad_request");
  EXPECT_EQ(code_of("EMBED"), "bad_request");
  EXPECT_EQ(code_of("RANK"), "bad_request");
  EXPECT_EQ(code_of("ATP no_such_design"), "unknown_design");
  EXPECT_EQ(code_of("RANK no_such_design"), "unknown_design");
}

TEST_F(NegativeProtocol, HostileLinesNeverCrash) {
  // Huge token, control characters, binary junk: typed error every time.
  EXPECT_EQ(code_of("ATP " + std::string(1 << 16, 'x')), "unknown_design");
  EXPECT_EQ(code_of(std::string("ATP \x01\x02\x7f")), "unknown_design");
  EXPECT_EQ(code_of("\xff\xfe\xfd"), "bad_request");
  // Extra operands are ignored, not fatal.
  const std::string resp = handler_->handle_line("HELP me please");
  EXPECT_EQ(resp.rfind("OK HELP", 0), 0u);
}

TEST_F(NegativeProtocol, CaseInsensitiveCommandsAndQuit) {
  EXPECT_EQ(code_of("atp no_such_design"), "unknown_design")
      << "commands are case-insensitive";
  bool quit = false;
  EXPECT_EQ(handler_->handle_line("quit", &quit), "OK BYE");
  EXPECT_TRUE(quit);
}

TEST_F(NegativeProtocol, OversizeRequestLineIsRefusedTyped) {
  // run() must bound per-line buffering: a hostile client streaming an
  // endless line gets a typed bad_request and the stream keeps serving
  // later (honest) lines instead of buffering without limit.
  serve::ProtocolConfig pcfg;
  pcfg.load_design = [](const std::string&)
      -> std::shared_ptr<const data::LabeledCircuit> { return nullptr; };
  pcfg.max_line_bytes = 64;
  serve::ProtocolHandler bounded(engine_, std::move(pcfg));

  std::istringstream in("ATP " + std::string(1 << 20, 'x') + "\nHELP\nQUIT\n");
  std::ostringstream out;
  const std::size_t handled = bounded.run(in, out);
  const std::string output = out.str();
  EXPECT_NE(output.find("ERR bad_request line exceeds 64 byte limit"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("OK HELP"), std::string::npos)
      << "stream must recover after the oversize line: " << output;
  EXPECT_NE(output.find("OK BYE"), std::string::npos) << output;
  EXPECT_EQ(handled, 3u);  // oversize + HELP + QUIT
}

TEST_F(NegativeProtocol, OversizeLineWithoutNewlineStopsAtEof) {
  serve::ProtocolConfig pcfg;
  pcfg.load_design = [](const std::string&)
      -> std::shared_ptr<const data::LabeledCircuit> { return nullptr; };
  pcfg.max_line_bytes = 64;
  serve::ProtocolHandler bounded(engine_, std::move(pcfg));

  // No terminating newline at all: refuse typed, then hit EOF — no hang,
  // no unbounded growth.
  std::istringstream in(std::string(4096, 'y'));
  std::ostringstream out;
  bounded.run(in, out);
  EXPECT_NE(out.str().find("ERR bad_request line exceeds"),
            std::string::npos)
      << out.str();
}

TEST_F(NegativeProtocol, AdminCommandsWorkWithoutAnyModel) {
  // HEALTH and METRICS must answer even on an empty registry (state=down).
  const std::string health = handler_->handle_line("HEALTH");
  EXPECT_EQ(health.rfind("OK HEALTH state=down", 0), 0u) << health;
  const std::string metrics = handler_->handle_line("METRICS");
  EXPECT_EQ(metrics.rfind("OK METRICS", 0), 0u);
  EXPECT_NE(metrics.find("health: down"), std::string::npos) << metrics;
}

}  // namespace
}  // namespace moss
