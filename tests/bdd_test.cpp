#include <gtest/gtest.h>

#include "bdd/formal.hpp"
#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "rtl/parser.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

namespace moss::bdd {
namespace {

using cell::standard_library;
using netlist::Netlist;

TEST(Bdd, ConstantsAndVars) {
  Manager mgr(2);
  EXPECT_TRUE(mgr.is_const(kFalse));
  EXPECT_TRUE(mgr.is_const(kTrue));
  const Ref x = mgr.var(0);
  EXPECT_FALSE(mgr.is_const(x));
  EXPECT_EQ(mgr.nvar(0), mgr.not_(x));
  EXPECT_THROW(mgr.var(5), Error);
}

TEST(Bdd, BooleanAlgebraIdentities) {
  Manager mgr(3);
  const Ref x = mgr.var(0), y = mgr.var(1), z = mgr.var(2);
  // Canonicity: equal functions share the same node.
  EXPECT_EQ(mgr.and_(x, y), mgr.and_(y, x));
  EXPECT_EQ(mgr.or_(x, mgr.and_(y, z)),
            mgr.and_(mgr.or_(x, y), mgr.or_(x, z)));  // distributivity
  EXPECT_EQ(mgr.xor_(x, x), kFalse);
  EXPECT_EQ(mgr.or_(x, mgr.not_(x)), kTrue);
  EXPECT_EQ(mgr.not_(mgr.not_(y)), y);
  // De Morgan.
  EXPECT_EQ(mgr.not_(mgr.and_(x, y)),
            mgr.or_(mgr.not_(x), mgr.not_(y)));
}

TEST(Bdd, EvalMatchesTruthTable) {
  Manager mgr(3);
  const Ref f = mgr.ite(mgr.var(0), mgr.var(1), mgr.xor_(mgr.var(1),
                                                         mgr.var(2)));
  for (int a = 0; a < 8; ++a) {
    const bool x0 = a & 1, x1 = (a >> 1) & 1, x2 = (a >> 2) & 1;
    const bool expect = x0 ? x1 : (x1 != x2);
    EXPECT_EQ(mgr.eval(f, {x0, x1, x2}), expect) << a;
  }
}

TEST(Bdd, SatCountAndAnySat) {
  Manager mgr(3);
  const Ref x = mgr.var(0), y = mgr.var(1), z = mgr.var(2);
  const Ref f = mgr.or_(mgr.and_(x, y), z);  // 5 of 8 assignments
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 5.0);
  const auto sat = mgr.any_sat(f);
  ASSERT_TRUE(sat.has_value());
  EXPECT_TRUE(mgr.eval(f, *sat));
  EXPECT_FALSE(mgr.any_sat(kFalse).has_value());
}

TEST(Bdd, ProbabilityWeighted) {
  Manager mgr(2);
  const Ref f = mgr.and_(mgr.var(0), mgr.var(1));
  EXPECT_NEAR(mgr.probability(f, {0.5, 0.5}), 0.25, 1e-12);
  EXPECT_NEAR(mgr.probability(f, {0.1, 0.9}), 0.09, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.not_(f), {0.1, 0.9}), 0.91, 1e-12);
}

TEST(Bdd, ResourceLimitThrows) {
  // A function whose BDD needs more nodes than allowed.
  Manager mgr(16, 40);
  Ref acc = kFalse;
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i + 1 < 16; i += 2) {
          acc = mgr.or_(acc, mgr.and_(mgr.var(i), mgr.var(i + 1)));
        }
      },
      Manager::ResourceLimit);
}

// ---------------------------------------------------------------------------
// Formal equivalence on synthesized netlists
// ---------------------------------------------------------------------------

rtl::Module demo_module() {
  return rtl::parse_verilog(R"(
    module d (input clk, input rst, input en, input [5:0] a, input [5:0] b,
              output [5:0] y, output flag);
      wire [5:0] s;
      reg [5:0] r;
      assign s = a + (b ^ {3'd0, a[5:3]});
      always @(posedge clk) begin
        if (rst) r <= 6'd0;
        else if (en) r <= s;
      end
      assign y = r;
      assign flag = r == 6'd63;
    endmodule)");
}

TEST(Formal, OptimizationPassesAreEquivalent) {
  const rtl::Module m = demo_module();
  synth::SynthOptions raw;
  raw.merge_gate_trees = false;
  raw.fuse_inverters = false;
  raw.insert_buffers = false;
  const Netlist a = synth::synthesize(m, standard_library(), raw);
  const Netlist b = synth::synthesize(m, standard_library());
  const FormalResult res = check_equivalence_formal(a, b);
  EXPECT_EQ(res.status, FormalResult::Status::kEquivalent) << res.detail;
}

TEST(Formal, DetectsFunctionalChange) {
  const rtl::Module m1 = demo_module();
  rtl::Module m2 = rtl::parse_verilog(R"(
    module d (input clk, input rst, input en, input [5:0] a, input [5:0] b,
              output [5:0] y, output flag);
      wire [5:0] s;
      reg [5:0] r;
      assign s = a + (b ^ {3'd0, a[5:3]}) + 6'd1;
      always @(posedge clk) begin
        if (rst) r <= 6'd0;
        else if (en) r <= s;
      end
      assign y = r;
      assign flag = r == 6'd63;
    endmodule)");
  const Netlist a = synth::synthesize(m1, standard_library());
  const Netlist b = synth::synthesize(m2, standard_library());
  const FormalResult res = check_equivalence_formal(a, b);
  EXPECT_EQ(res.status, FormalResult::Status::kNotEquivalent);
  EXPECT_FALSE(res.counterexample.empty());
}

TEST(Formal, DetectsInterfaceMismatch) {
  const rtl::Module m = demo_module();
  const rtl::Module other = rtl::parse_verilog(R"(
    module d (input [3:0] a, output [3:0] y);
      assign y = ~a;
    endmodule)");
  const Netlist a = synth::synthesize(m, standard_library());
  const Netlist b = synth::synthesize(other, standard_library());
  const FormalResult res = check_equivalence_formal(a, b);
  EXPECT_EQ(res.status, FormalResult::Status::kNotEquivalent);
}

TEST(Formal, ResourceLimitDegradesGracefully) {
  // 12x12 multiplier: BDDs blow up under a tiny node budget.
  const rtl::Module m = rtl::parse_verilog(R"(
    module big (input [11:0] a, input [11:0] b, output [11:0] p);
      assign p = a * b;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const FormalResult res = check_equivalence_formal(nl, nl, 2000);
  EXPECT_EQ(res.status, FormalResult::Status::kResourceLimit);
}

TEST(Formal, ExactProbabilityMatchesSimulation) {
  // Pure combinational circuit: the simulator's empirical one-rate must
  // converge to the BDD's exact probability.
  const rtl::Module m = rtl::parse_verilog(R"(
    module comb (input [3:0] a, input [3:0] b, output [3:0] y, output c);
      assign y = (a & b) ^ (a + b);
      assign c = a < b;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const auto exact = exact_one_probability(nl);
  Rng rng(3);
  const auto act = sim::random_activity(nl, 20000, rng);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    if (nl.node(static_cast<netlist::NodeId>(i)).kind !=
        netlist::NodeKind::kCell) {
      continue;
    }
    EXPECT_NEAR(act.one_prob[i], exact[i], 0.02)
        << nl.node(static_cast<netlist::NodeId>(i)).name;
  }
}

TEST(Formal, ExactProbabilityRespectsInputBias) {
  const rtl::Module m = rtl::parse_verilog(R"(
    module b2 (input x, input y, output z);
      assign z = x & y;
    endmodule)");
  const Netlist nl = synth::synthesize(m, standard_library());
  const auto p = exact_one_probability(nl, 0.9);
  const auto z = nl.find("z");
  EXPECT_NEAR(p[static_cast<std::size_t>(z)], 0.81, 1e-9);
}

}  // namespace
}  // namespace moss::bdd
