# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_util_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/lm_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/aig_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_features_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/xsim_test[1]_include.cmake")
include("/root/repo/build/tests/activity_io_test[1]_include.cmake")
