file(REMOVE_RECURSE
  "CMakeFiles/lm_test.dir/lm_test.cpp.o"
  "CMakeFiles/lm_test.dir/lm_test.cpp.o.d"
  "lm_test"
  "lm_test.pdb"
  "lm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
