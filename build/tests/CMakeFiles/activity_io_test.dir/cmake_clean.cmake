file(REMOVE_RECURSE
  "CMakeFiles/activity_io_test.dir/activity_io_test.cpp.o"
  "CMakeFiles/activity_io_test.dir/activity_io_test.cpp.o.d"
  "activity_io_test"
  "activity_io_test.pdb"
  "activity_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
