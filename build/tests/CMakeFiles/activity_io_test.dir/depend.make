# Empty dependencies file for activity_io_test.
# This may be replaced when dependencies are built.
