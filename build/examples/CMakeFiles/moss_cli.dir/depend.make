# Empty dependencies file for moss_cli.
# This may be replaced when dependencies are built.
