file(REMOVE_RECURSE
  "CMakeFiles/moss_cli.dir/moss_cli.cpp.o"
  "CMakeFiles/moss_cli.dir/moss_cli.cpp.o.d"
  "moss_cli"
  "moss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
