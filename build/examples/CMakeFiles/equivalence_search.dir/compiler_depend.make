# Empty compiler generated dependencies file for equivalence_search.
# This may be replaced when dependencies are built.
