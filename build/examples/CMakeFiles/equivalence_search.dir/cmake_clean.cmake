file(REMOVE_RECURSE
  "CMakeFiles/equivalence_search.dir/equivalence_search.cpp.o"
  "CMakeFiles/equivalence_search.dir/equivalence_search.cpp.o.d"
  "equivalence_search"
  "equivalence_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
