file(REMOVE_RECURSE
  "CMakeFiles/timing_explorer.dir/timing_explorer.cpp.o"
  "CMakeFiles/timing_explorer.dir/timing_explorer.cpp.o.d"
  "timing_explorer"
  "timing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
