# Empty dependencies file for fault_and_waves.
# This may be replaced when dependencies are built.
