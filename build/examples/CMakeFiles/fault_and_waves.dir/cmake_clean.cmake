file(REMOVE_RECURSE
  "CMakeFiles/fault_and_waves.dir/fault_and_waves.cpp.o"
  "CMakeFiles/fault_and_waves.dir/fault_and_waves.cpp.o.d"
  "fault_and_waves"
  "fault_and_waves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_and_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
