# Empty dependencies file for moss_gnn.
# This may be replaced when dependencies are built.
