file(REMOVE_RECURSE
  "libmoss_gnn.a"
)
