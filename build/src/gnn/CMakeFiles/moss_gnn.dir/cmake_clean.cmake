file(REMOVE_RECURSE
  "CMakeFiles/moss_gnn.dir/graph.cpp.o"
  "CMakeFiles/moss_gnn.dir/graph.cpp.o.d"
  "CMakeFiles/moss_gnn.dir/two_phase_gnn.cpp.o"
  "CMakeFiles/moss_gnn.dir/two_phase_gnn.cpp.o.d"
  "libmoss_gnn.a"
  "libmoss_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
