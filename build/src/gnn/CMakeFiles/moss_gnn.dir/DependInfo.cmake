
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/graph.cpp" "src/gnn/CMakeFiles/moss_gnn.dir/graph.cpp.o" "gcc" "src/gnn/CMakeFiles/moss_gnn.dir/graph.cpp.o.d"
  "/root/repo/src/gnn/two_phase_gnn.cpp" "src/gnn/CMakeFiles/moss_gnn.dir/two_phase_gnn.cpp.o" "gcc" "src/gnn/CMakeFiles/moss_gnn.dir/two_phase_gnn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/moss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
