# Empty dependencies file for moss_cell.
# This may be replaced when dependencies are built.
