file(REMOVE_RECURSE
  "CMakeFiles/moss_cell.dir/library.cpp.o"
  "CMakeFiles/moss_cell.dir/library.cpp.o.d"
  "libmoss_cell.a"
  "libmoss_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
