file(REMOVE_RECURSE
  "libmoss_cell.a"
)
