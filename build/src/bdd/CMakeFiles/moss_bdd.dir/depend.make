# Empty dependencies file for moss_bdd.
# This may be replaced when dependencies are built.
