file(REMOVE_RECURSE
  "CMakeFiles/moss_bdd.dir/bdd.cpp.o"
  "CMakeFiles/moss_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/moss_bdd.dir/formal.cpp.o"
  "CMakeFiles/moss_bdd.dir/formal.cpp.o.d"
  "libmoss_bdd.a"
  "libmoss_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
