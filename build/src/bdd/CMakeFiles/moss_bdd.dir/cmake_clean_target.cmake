file(REMOVE_RECURSE
  "libmoss_bdd.a"
)
