# Empty dependencies file for moss_sta.
# This may be replaced when dependencies are built.
