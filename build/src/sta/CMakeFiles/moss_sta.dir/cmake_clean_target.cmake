file(REMOVE_RECURSE
  "libmoss_sta.a"
)
