file(REMOVE_RECURSE
  "CMakeFiles/moss_sta.dir/sta.cpp.o"
  "CMakeFiles/moss_sta.dir/sta.cpp.o.d"
  "libmoss_sta.a"
  "libmoss_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
