# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core_util")
subdirs("cell")
subdirs("netlist")
subdirs("rtl")
subdirs("synth")
subdirs("sim")
subdirs("sta")
subdirs("power")
subdirs("aig")
subdirs("bdd")
subdirs("tensor")
subdirs("lm")
subdirs("clustering")
subdirs("gnn")
subdirs("baseline")
subdirs("core")
subdirs("data")
