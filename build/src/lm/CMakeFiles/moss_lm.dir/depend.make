# Empty dependencies file for moss_lm.
# This may be replaced when dependencies are built.
