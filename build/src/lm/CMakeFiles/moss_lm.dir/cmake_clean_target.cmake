file(REMOVE_RECURSE
  "libmoss_lm.a"
)
