file(REMOVE_RECURSE
  "CMakeFiles/moss_lm.dir/encoder.cpp.o"
  "CMakeFiles/moss_lm.dir/encoder.cpp.o.d"
  "CMakeFiles/moss_lm.dir/tokenizer.cpp.o"
  "CMakeFiles/moss_lm.dir/tokenizer.cpp.o.d"
  "libmoss_lm.a"
  "libmoss_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
