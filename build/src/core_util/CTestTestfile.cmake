# CMake generated Testfile for 
# Source directory: /root/repo/src/core_util
# Build directory: /root/repo/build/src/core_util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
