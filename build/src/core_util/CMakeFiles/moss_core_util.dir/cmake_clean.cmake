file(REMOVE_RECURSE
  "CMakeFiles/moss_core_util.dir/strings.cpp.o"
  "CMakeFiles/moss_core_util.dir/strings.cpp.o.d"
  "libmoss_core_util.a"
  "libmoss_core_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_core_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
