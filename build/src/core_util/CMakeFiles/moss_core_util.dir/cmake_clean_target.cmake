file(REMOVE_RECURSE
  "libmoss_core_util.a"
)
