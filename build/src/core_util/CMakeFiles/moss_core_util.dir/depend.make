# Empty dependencies file for moss_core_util.
# This may be replaced when dependencies are built.
