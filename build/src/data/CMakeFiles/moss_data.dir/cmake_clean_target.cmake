file(REMOVE_RECURSE
  "libmoss_data.a"
)
