
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/moss_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/moss_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/data/CMakeFiles/moss_data.dir/generators.cpp.o" "gcc" "src/data/CMakeFiles/moss_data.dir/generators.cpp.o.d"
  "/root/repo/src/data/stats.cpp" "src/data/CMakeFiles/moss_data.dir/stats.cpp.o" "gcc" "src/data/CMakeFiles/moss_data.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/moss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/moss_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/moss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/moss_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/moss_power.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/moss_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/moss_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
