# Empty compiler generated dependencies file for moss_data.
# This may be replaced when dependencies are built.
