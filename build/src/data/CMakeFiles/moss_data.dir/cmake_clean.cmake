file(REMOVE_RECURSE
  "CMakeFiles/moss_data.dir/dataset.cpp.o"
  "CMakeFiles/moss_data.dir/dataset.cpp.o.d"
  "CMakeFiles/moss_data.dir/generators.cpp.o"
  "CMakeFiles/moss_data.dir/generators.cpp.o.d"
  "CMakeFiles/moss_data.dir/stats.cpp.o"
  "CMakeFiles/moss_data.dir/stats.cpp.o.d"
  "libmoss_data.a"
  "libmoss_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
