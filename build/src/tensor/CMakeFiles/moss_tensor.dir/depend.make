# Empty dependencies file for moss_tensor.
# This may be replaced when dependencies are built.
