file(REMOVE_RECURSE
  "libmoss_tensor.a"
)
