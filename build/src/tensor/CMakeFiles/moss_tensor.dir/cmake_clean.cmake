file(REMOVE_RECURSE
  "CMakeFiles/moss_tensor.dir/nn.cpp.o"
  "CMakeFiles/moss_tensor.dir/nn.cpp.o.d"
  "CMakeFiles/moss_tensor.dir/serialize.cpp.o"
  "CMakeFiles/moss_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/moss_tensor.dir/tensor.cpp.o"
  "CMakeFiles/moss_tensor.dir/tensor.cpp.o.d"
  "libmoss_tensor.a"
  "libmoss_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
