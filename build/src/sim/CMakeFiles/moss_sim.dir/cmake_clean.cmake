file(REMOVE_RECURSE
  "CMakeFiles/moss_sim.dir/activity_io.cpp.o"
  "CMakeFiles/moss_sim.dir/activity_io.cpp.o.d"
  "CMakeFiles/moss_sim.dir/equivalence.cpp.o"
  "CMakeFiles/moss_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/moss_sim.dir/fault.cpp.o"
  "CMakeFiles/moss_sim.dir/fault.cpp.o.d"
  "CMakeFiles/moss_sim.dir/simulator.cpp.o"
  "CMakeFiles/moss_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/moss_sim.dir/vcd.cpp.o"
  "CMakeFiles/moss_sim.dir/vcd.cpp.o.d"
  "CMakeFiles/moss_sim.dir/xsim.cpp.o"
  "CMakeFiles/moss_sim.dir/xsim.cpp.o.d"
  "libmoss_sim.a"
  "libmoss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
