
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activity_io.cpp" "src/sim/CMakeFiles/moss_sim.dir/activity_io.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/activity_io.cpp.o.d"
  "/root/repo/src/sim/equivalence.cpp" "src/sim/CMakeFiles/moss_sim.dir/equivalence.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/equivalence.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/moss_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/moss_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/moss_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/vcd.cpp.o.d"
  "/root/repo/src/sim/xsim.cpp" "src/sim/CMakeFiles/moss_sim.dir/xsim.cpp.o" "gcc" "src/sim/CMakeFiles/moss_sim.dir/xsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/moss_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/moss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/moss_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
