file(REMOVE_RECURSE
  "libmoss_sim.a"
)
