# Empty compiler generated dependencies file for moss_sim.
# This may be replaced when dependencies are built.
