file(REMOVE_RECURSE
  "libmoss_power.a"
)
