file(REMOVE_RECURSE
  "CMakeFiles/moss_power.dir/power.cpp.o"
  "CMakeFiles/moss_power.dir/power.cpp.o.d"
  "libmoss_power.a"
  "libmoss_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
