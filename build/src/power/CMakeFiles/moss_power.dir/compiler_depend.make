# Empty compiler generated dependencies file for moss_power.
# This may be replaced when dependencies are built.
