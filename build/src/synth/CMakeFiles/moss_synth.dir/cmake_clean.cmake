file(REMOVE_RECURSE
  "CMakeFiles/moss_synth.dir/gate_builder.cpp.o"
  "CMakeFiles/moss_synth.dir/gate_builder.cpp.o.d"
  "CMakeFiles/moss_synth.dir/synthesize.cpp.o"
  "CMakeFiles/moss_synth.dir/synthesize.cpp.o.d"
  "libmoss_synth.a"
  "libmoss_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
