
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/gate_builder.cpp" "src/synth/CMakeFiles/moss_synth.dir/gate_builder.cpp.o" "gcc" "src/synth/CMakeFiles/moss_synth.dir/gate_builder.cpp.o.d"
  "/root/repo/src/synth/synthesize.cpp" "src/synth/CMakeFiles/moss_synth.dir/synthesize.cpp.o" "gcc" "src/synth/CMakeFiles/moss_synth.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/moss_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/moss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/moss_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
