# Empty dependencies file for moss_synth.
# This may be replaced when dependencies are built.
