file(REMOVE_RECURSE
  "libmoss_synth.a"
)
