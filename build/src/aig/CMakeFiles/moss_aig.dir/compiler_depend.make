# Empty compiler generated dependencies file for moss_aig.
# This may be replaced when dependencies are built.
