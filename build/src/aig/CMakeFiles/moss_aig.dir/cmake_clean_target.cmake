file(REMOVE_RECURSE
  "libmoss_aig.a"
)
