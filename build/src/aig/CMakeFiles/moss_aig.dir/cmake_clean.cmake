file(REMOVE_RECURSE
  "CMakeFiles/moss_aig.dir/aig.cpp.o"
  "CMakeFiles/moss_aig.dir/aig.cpp.o.d"
  "CMakeFiles/moss_aig.dir/aig_sim.cpp.o"
  "CMakeFiles/moss_aig.dir/aig_sim.cpp.o.d"
  "CMakeFiles/moss_aig.dir/balance.cpp.o"
  "CMakeFiles/moss_aig.dir/balance.cpp.o.d"
  "libmoss_aig.a"
  "libmoss_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
