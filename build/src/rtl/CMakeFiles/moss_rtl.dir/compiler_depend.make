# Empty compiler generated dependencies file for moss_rtl.
# This may be replaced when dependencies are built.
