file(REMOVE_RECURSE
  "CMakeFiles/moss_rtl.dir/eval.cpp.o"
  "CMakeFiles/moss_rtl.dir/eval.cpp.o.d"
  "CMakeFiles/moss_rtl.dir/lint.cpp.o"
  "CMakeFiles/moss_rtl.dir/lint.cpp.o.d"
  "CMakeFiles/moss_rtl.dir/module.cpp.o"
  "CMakeFiles/moss_rtl.dir/module.cpp.o.d"
  "CMakeFiles/moss_rtl.dir/parser.cpp.o"
  "CMakeFiles/moss_rtl.dir/parser.cpp.o.d"
  "CMakeFiles/moss_rtl.dir/printer.cpp.o"
  "CMakeFiles/moss_rtl.dir/printer.cpp.o.d"
  "CMakeFiles/moss_rtl.dir/prompts.cpp.o"
  "CMakeFiles/moss_rtl.dir/prompts.cpp.o.d"
  "libmoss_rtl.a"
  "libmoss_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
