
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/eval.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/eval.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/eval.cpp.o.d"
  "/root/repo/src/rtl/lint.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/lint.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/lint.cpp.o.d"
  "/root/repo/src/rtl/module.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/module.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/module.cpp.o.d"
  "/root/repo/src/rtl/parser.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/parser.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/parser.cpp.o.d"
  "/root/repo/src/rtl/printer.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/printer.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/printer.cpp.o.d"
  "/root/repo/src/rtl/prompts.cpp" "src/rtl/CMakeFiles/moss_rtl.dir/prompts.cpp.o" "gcc" "src/rtl/CMakeFiles/moss_rtl.dir/prompts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
