file(REMOVE_RECURSE
  "libmoss_rtl.a"
)
