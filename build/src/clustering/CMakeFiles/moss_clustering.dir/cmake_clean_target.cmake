file(REMOVE_RECURSE
  "libmoss_clustering.a"
)
