file(REMOVE_RECURSE
  "CMakeFiles/moss_clustering.dir/clustering.cpp.o"
  "CMakeFiles/moss_clustering.dir/clustering.cpp.o.d"
  "libmoss_clustering.a"
  "libmoss_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
