# Empty dependencies file for moss_clustering.
# This may be replaced when dependencies are built.
