file(REMOVE_RECURSE
  "CMakeFiles/moss_core.dir/evaluate.cpp.o"
  "CMakeFiles/moss_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/moss_core.dir/features.cpp.o"
  "CMakeFiles/moss_core.dir/features.cpp.o.d"
  "CMakeFiles/moss_core.dir/model.cpp.o"
  "CMakeFiles/moss_core.dir/model.cpp.o.d"
  "CMakeFiles/moss_core.dir/trainer.cpp.o"
  "CMakeFiles/moss_core.dir/trainer.cpp.o.d"
  "CMakeFiles/moss_core.dir/workflow.cpp.o"
  "CMakeFiles/moss_core.dir/workflow.cpp.o.d"
  "libmoss_core.a"
  "libmoss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
