file(REMOVE_RECURSE
  "libmoss_core.a"
)
