# Empty compiler generated dependencies file for moss_core.
# This may be replaced when dependencies are built.
