# Empty dependencies file for moss_baseline.
# This may be replaced when dependencies are built.
