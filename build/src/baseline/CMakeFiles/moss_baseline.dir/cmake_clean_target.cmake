file(REMOVE_RECURSE
  "libmoss_baseline.a"
)
