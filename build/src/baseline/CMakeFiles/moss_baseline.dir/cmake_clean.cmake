file(REMOVE_RECURSE
  "CMakeFiles/moss_baseline.dir/deepseq.cpp.o"
  "CMakeFiles/moss_baseline.dir/deepseq.cpp.o.d"
  "libmoss_baseline.a"
  "libmoss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
