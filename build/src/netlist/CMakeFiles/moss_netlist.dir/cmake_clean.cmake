file(REMOVE_RECURSE
  "CMakeFiles/moss_netlist.dir/netlist.cpp.o"
  "CMakeFiles/moss_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/moss_netlist.dir/writer.cpp.o"
  "CMakeFiles/moss_netlist.dir/writer.cpp.o.d"
  "libmoss_netlist.a"
  "libmoss_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
