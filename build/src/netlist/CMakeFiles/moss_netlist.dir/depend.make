# Empty dependencies file for moss_netlist.
# This may be replaced when dependencies are built.
