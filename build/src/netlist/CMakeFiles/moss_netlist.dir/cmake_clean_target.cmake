file(REMOVE_RECURSE
  "libmoss_netlist.a"
)
