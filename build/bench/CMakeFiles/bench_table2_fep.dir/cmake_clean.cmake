file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fep.dir/bench_table2_fep.cpp.o"
  "CMakeFiles/bench_table2_fep.dir/bench_table2_fep.cpp.o.d"
  "bench_table2_fep"
  "bench_table2_fep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
