# Empty compiler generated dependencies file for bench_table2_fep.
# This may be replaced when dependencies are built.
