# Empty dependencies file for bench_fig7_pretrain_loss.
# This may be replaced when dependencies are built.
