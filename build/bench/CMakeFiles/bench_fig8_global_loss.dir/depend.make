# Empty dependencies file for bench_fig8_global_loss.
# This may be replaced when dependencies are built.
