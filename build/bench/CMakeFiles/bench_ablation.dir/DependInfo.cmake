
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/moss_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/moss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/moss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/moss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/moss_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/moss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/moss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/moss_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/moss_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/moss_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/moss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/moss_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/moss_power.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/moss_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/moss_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/moss_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/core_util/CMakeFiles/moss_core_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
