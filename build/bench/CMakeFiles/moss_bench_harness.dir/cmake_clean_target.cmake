file(REMOVE_RECURSE
  "libmoss_bench_harness.a"
)
