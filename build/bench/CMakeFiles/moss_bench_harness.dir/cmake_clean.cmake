file(REMOVE_RECURSE
  "CMakeFiles/moss_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/moss_bench_harness.dir/harness.cpp.o.d"
  "libmoss_bench_harness.a"
  "libmoss_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
