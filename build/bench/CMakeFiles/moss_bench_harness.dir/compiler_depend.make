# Empty compiler generated dependencies file for moss_bench_harness.
# This may be replaced when dependencies are built.
