#include "json_report.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace moss::bench {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const JsonReport::Value& v) {
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    out += buf;
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* b = std::get_if<bool>(&v)) {
    out += *b ? "true" : "false";
  } else {
    append_escaped(out, std::get<std::string>(v));
  }
}

void append_object(std::string& out,
                   const std::vector<std::pair<std::string, JsonReport::Value>>&
                       cells) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : cells) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, k);
    out += ": ";
    append_value(out, v);
  }
  out += "}";
}

}  // namespace

JsonReport::JsonReport(std::string name)
    : name_(std::move(name)), start_ns_(now_ns()) {}

void JsonReport::metric(const std::string& key, Value v) {
  metrics_.emplace_back(key, std::move(v));
}

void JsonReport::row(const std::string& table,
                     std::vector<std::pair<std::string, Value>> cells) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    table_order_.push_back(table);
    it = tables_.emplace(table, decltype(tables_)::mapped_type{}).first;
  }
  it->second.push_back(std::move(cells));
}

std::string JsonReport::to_json() const {
  const double wall_s =
      static_cast<double>(now_ns() - start_ns_) / 1e9;
  std::string out = "{\n  \"bench\": ";
  append_escaped(out, name_);
  out += ",\n  \"schema_version\": 1,\n  \"wall_clock_s\": ";
  append_value(out, wall_s);
  for (const auto& [k, v] : metrics_) {
    out += ",\n  ";
    append_escaped(out, k);
    out += ": ";
    append_value(out, v);
  }
  for (const std::string& t : table_order_) {
    out += ",\n  ";
    append_escaped(out, t);
    out += ": [";
    bool first = true;
    for (const auto& cells : tables_.at(t)) {
      if (!first) out += ",";
      first = false;
      out += "\n    ";
      append_object(out, cells);
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

bool JsonReport::write(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name_ + ".json";
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "json_report: cannot open %s\n", path.c_str());
    return false;
  }
  f << to_json();
  return static_cast<bool>(f);
}

}  // namespace moss::bench
