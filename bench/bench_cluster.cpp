// Cluster economics: what moss::cluster's two mechanisms buy, with floors.
//
// 1. Warm restart (persistent MOSSSEG1 cache). A shard is "killed" after
//    serving FEP-rank traffic, its EmbeddingCache persisted via save_cache;
//    a fresh, identically-configured session (what the supervisor respawns)
//    reloads the segments and serves its FIRST pass from the restored
//    cache. Floor: warm-restart first-pass QPS >= 10x the no-persistence
//    cold baseline (the respawned shard must not re-pay the ~100-QPS cold
//    FEP-rank cost that results/bench_serve.json documents).
//
// 2. Horizontal scaling (consistent-hash Router over LocalBackends). The
//    same ATP traffic driven through 1 shard vs 2. Requests here are
//    latency-bound — each engine holds a request for its micro-batching
//    window — so the aggregate win comes from shards overlapping those
//    windows (and, on multicore, their compute), exactly as the
//    multi-process deployment overlaps whole processes. Floor: 2-shard
//    aggregate QPS >= 1.7x 1-shard.
//
// Output: stdout tables + results/bench_cluster.json. Exit 1 when a floor
// is missed. MOSS_BENCH_SCALE=0 shrinks the workload (CI smoke) but the
// floors stay enforced.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/segment.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

using namespace moss;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double run_pass(serve::InferenceEngine& eng,
                const std::vector<serve::Request>& reqs) {
  const auto t0 = Clock::now();
  std::vector<std::future<serve::Response>> futs;
  futs.reserve(reqs.size());
  for (const auto& r : reqs) futs.push_back(eng.submit(r));
  for (auto& f : futs) f.get();
  return seconds_since(t0);
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/moss_bench_cluster_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const bool smoke = scale.sim_cycles < 1000;
  const std::size_t kPool = smoke ? 8 : 16;
  const int warm_rounds = smoke ? 2 : 4;

  std::printf("=== moss_cluster: warm restart + shard scaling ===\n\n");

  const auto& lib = cell::standard_library();
  core::WorkflowConfig cfg;
  cfg.model.hidden = 16;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = smoke ? 150 : 400;
  cfg.dataset.threads = scale.threads;
  cfg.encoder = {2048, 16, 9};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 10000;

  // Design pool balanced against the 2-shard ring the scaling section will
  // build (same vnodes/seed as RouterConfig defaults): exactly kPool/2
  // designs per shard, so the scaling number measures shard overlap, not
  // the hash skew of one particular tiny key set (ring balance has its own
  // test in cluster_test).
  const auto fams = data::families();
  std::vector<data::DesignSpec> specs;
  {
    cluster::HashRing two_shard_ring(cluster::RouterConfig{}.vnodes,
                                     cluster::RouterConfig{}.ring_seed);
    two_shard_ring.add_shard(0);
    two_shard_ring.add_shard(1);
    std::size_t per_shard[2] = {0, 0};
    for (std::size_t i = 0; specs.size() < kPool && i < 10000; ++i) {
      data::DesignSpec s;
      s.family = fams[i % fams.size()];
      s.size_hint = 1;
      s.seed = 0xC10 + i;
      s.name = s.family + "_cl" + std::to_string(i);
      const std::uint32_t owner =
          two_shard_ring.owner(cluster::Router::design_key(s.name));
      if (per_shard[owner] >= kPool / 2) continue;
      ++per_shard[owner];
      specs.push_back(std::move(s));
    }
  }
  std::fprintf(stderr, "[labeling %zu circuits]\n", kPool);
  const auto lcs = data::build_dataset(specs, lib, cfg.dataset);
  std::vector<std::string> corpus;
  for (const auto& lc : lcs) corpus.push_back(lc.module_text);

  // Two boots of the same config + corpus: the shard before the kill and
  // the shard the supervisor respawns. Restart-stable cache keying is the
  // whole premise — check it before timing anything.
  const auto session = serve::MossSession::load(cfg, corpus, "");
  const auto respawned = serve::MossSession::load(cfg, corpus, "");
  if (session->fingerprint() != respawned->fingerprint()) {
    std::printf("FAIL: respawned session fingerprint differs "
                "(%llx vs %llx) — persisted cache would never hit\n",
                static_cast<unsigned long long>(session->fingerprint()),
                static_cast<unsigned long long>(respawned->fingerprint()));
    return 1;
  }

  std::vector<std::shared_ptr<const core::CircuitBatch>> members;
  std::vector<std::shared_ptr<const data::LabeledCircuit>> circuits;
  for (const auto& lc : lcs) {
    circuits.push_back(std::make_shared<data::LabeledCircuit>(lc));
    members.push_back(
        std::make_shared<core::CircuitBatch>(session->build(lc)));
  }

  std::vector<serve::Request> rank_reqs;
  for (std::size_t i = 0; i < kPool; ++i) {
    serve::Request r;
    r.kind = serve::RequestKind::kFepRank;
    r.rtl_text = lcs[i].module_text;
    r.pool = "pool";
    rank_reqs.push_back(std::move(r));
  }

  bench::JsonReport report("bench_cluster");

  // --- 1. Warm restart: persisted cache vs cold respawn ------------------
  std::printf("--- warm restart (FEP-rank, %zu-circuit pool) ---\n\n", kPool);
  serve::EngineConfig ecfg;
  ecfg.queue_capacity = 4 * kPool;
  ecfg.max_delay_ms = 0;  // batching delay would mask the cache effect

  TempDir cache_dir;
  double cold_qps = 0.0, restart_qps = 0.0;
  std::size_t saved_entries = 0;
  {
    // The no-persistence cold baseline: an engine with no cache serves
    // every FEP-rank request at the full re-embed-the-pool cost — the same
    // "cold" column results/bench_serve.json reports and the rate a
    // respawned shard pays per uncached key. (An in-memory cache would
    // warm mid-pass and hide the cost being measured.)
    const int cold_passes = 3;
    double cold_s = 0.0;
    {
      serve::ModelRegistry reg;
      reg.install("default", session);
      serve::InferenceEngine eng(reg, /*cache=*/nullptr, ecfg);
      eng.register_pool("pool", members);
      for (int b = 0; b < cold_passes; ++b) cold_s += run_pass(eng, rank_reqs);
    }
    cold_qps = static_cast<double>(rank_reqs.size()) * cold_passes / cold_s;

    // The boot that survives: serve until fully warm, then "kill" the
    // shard cleanly — flush its segments to disk.
    serve::ModelRegistry reg;
    reg.install("default", session);
    serve::EmbeddingCache cache(256u << 20);
    serve::InferenceEngine eng(reg, &cache, ecfg);
    eng.register_pool("pool", members);
    run_pass(eng, rank_reqs);
    run_pass(eng, rank_reqs);
    const cluster::SaveReport sr =
        cluster::save_cache(cache_dir.path, cache, session->fingerprint());
    saved_entries = sr.entries;
    std::printf("shard 1st boot: cold first pass %.1f qps, flushed %zu "
                "entries in %zu segment(s)\n",
                cold_qps, sr.entries, sr.segments);
  }
  {
    // Respawn: fresh process state (new session object, new engine, new
    // cache), warm-started from the segment files.
    serve::ModelRegistry reg;
    reg.install("default", respawned);
    serve::EmbeddingCache cache(256u << 20);
    const cluster::LoadReport lr = cluster::load_cache(
        cache_dir.path, cache, respawned->fingerprint());
    serve::InferenceEngine eng(reg, &cache, ecfg);
    eng.register_pool("pool", members);
    double restart_s = 0.0;
    for (int r = 0; r < warm_rounds; ++r) {
      restart_s += run_pass(eng, rank_reqs);
    }
    restart_qps = static_cast<double>(rank_reqs.size()) * warm_rounds /
                  restart_s;
    std::printf("respawned shard: restored %zu/%zu entries "
                "(%zu segment(s), %zu rejected), first passes %.1f qps\n",
                lr.entries, saved_entries, lr.segments_loaded,
                lr.segments_rejected, restart_qps);
    report.metric("restored_entries", static_cast<std::int64_t>(lr.entries));
  }
  const double restart_speedup = restart_qps / cold_qps;
  std::printf("warm-restart speedup: %.1fx (floor: 10x)\n\n",
              restart_speedup);
  report.metric("cold_qps", cold_qps);
  report.metric("warm_restart_qps", restart_qps);
  report.metric("warm_restart_speedup", restart_speedup);

  // --- 2. Shard scaling: Router over 1 vs 2 LocalBackends ----------------
  std::printf("--- shard scaling (ATP via Router, %zu designs, 8 drivers) "
              "---\n\n", kPool);
  // Per-token circuit resolution for the protocol layer, shared and
  // pre-labeled so the measurement is pure routing + serving.
  std::unordered_map<std::string,
                     std::shared_ptr<const data::LabeledCircuit>> by_name;
  for (std::size_t i = 0; i < kPool; ++i) by_name[lcs[i].spec.name] = circuits[i];

  serve::EngineConfig scfg;
  scfg.queue_capacity = 4 * kPool;
  scfg.threads = 1;          // per-shard compute fixed; shards are the axis
  scfg.max_delay_ms = 15;    // each shard holds a micro-batching window —
                             // the latency the second shard overlaps
  const int kDrivers = 8;
  const int kPassesPerDriver = smoke ? 1 : 2;

  const auto qps_at = [&](std::size_t nshards) {
    std::vector<std::unique_ptr<serve::ModelRegistry>> regs;
    std::vector<std::unique_ptr<serve::InferenceEngine>> engines;
    std::vector<std::unique_ptr<cluster::Backend>> backends;
    for (std::size_t i = 0; i < nshards; ++i) {
      regs.push_back(std::make_unique<serve::ModelRegistry>());
      regs.back()->install("default", session);
      engines.push_back(std::make_unique<serve::InferenceEngine>(
          *regs.back(), nullptr, scfg));
      serve::ProtocolConfig pcfg;
      pcfg.load_design = [&by_name](const std::string& token)
          -> std::shared_ptr<const data::LabeledCircuit> {
        const auto it = by_name.find(token);
        return it == by_name.end() ? nullptr : it->second;
      };
      backends.push_back(std::make_unique<cluster::LocalBackend>(
          "s" + std::to_string(i), *engines.back(), std::move(pcfg)));
    }
    cluster::RouterConfig rcfg;
    rcfg.replicas = 0;
    cluster::Router router(std::move(backends), rcfg);

    std::atomic<std::uint64_t> errors{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> drivers;
    for (int d = 0; d < kDrivers; ++d) {
      drivers.emplace_back([&, d] {
        for (int p = 0; p < kPassesPerDriver; ++p) {
          for (std::size_t i = 0; i < kPool; ++i) {
            const std::string resp = router.route(
                "ATP " + lcs[(i + static_cast<std::size_t>(d)) % kPool].spec.name);
            if (resp.rfind("OK ", 0) != 0) ++errors;
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
    const double elapsed = seconds_since(t0);
    const double total = static_cast<double>(kDrivers) * kPassesPerDriver *
                         static_cast<double>(kPool);
    if (errors.load() != 0) {
      std::printf("FAIL: %llu non-OK responses at %zu shard(s)\n",
                  static_cast<unsigned long long>(errors.load()), nshards);
    }
    // Engines stop in their destructors; keep them alive until here.
    return errors.load() == 0 ? total / elapsed : 0.0;
  };

  const double qps1 = qps_at(1);
  const double qps2 = qps_at(2);
  const double scaling = qps1 > 0.0 ? qps2 / qps1 : 0.0;
  // 4-shard column: only meaningful when the machine can actually run four
  // shards (plus drivers) in parallel; on smaller hosts it is skipped with
  // a note, and the JSON keys are still emitted (zeroed, measured=false)
  // so downstream scrapers see one stable schema either way. No floor —
  // the enforced floor stays on the 2-shard point.
  const unsigned hc = std::thread::hardware_concurrency();
  const bool shards4_measured = hc >= 4;
  const double qps4 = shards4_measured ? qps_at(4) : 0.0;
  const double scaling4 =
      shards4_measured && qps1 > 0.0 ? qps4 / qps1 : 0.0;
  std::printf("%8s | %10s\n", "shards", "qps");
  bench::print_rule(22);
  std::printf("%8d | %10.1f\n", 1, qps1);
  std::printf("%8d | %10.1f\n", 2, qps2);
  if (shards4_measured) {
    std::printf("%8d | %10.1f\n", 4, qps4);
  } else {
    std::printf("%8d | %10s (hardware_concurrency=%u < 4)\n", 4, "skipped",
                hc);
  }
  bench::print_rule(22);
  std::printf("2-shard scaling: %.2fx (floor: 1.7x)\n", scaling);
  if (shards4_measured) {
    std::printf("4-shard scaling: %.2fx (informational)\n", scaling4);
  }
  report.metric("qps_1_shard", qps1);
  report.metric("qps_2_shards", qps2);
  report.metric("scaling_2_shards", scaling);
  report.metric("qps_4_shards", qps4);
  report.metric("scaling_4_shards", scaling4);
  report.metric("shards_4_measured", shards4_measured);

  const bool restart_ok = restart_speedup >= 10.0;
  const bool scaling_ok = scaling >= 1.7;
  report.metric("restart_floor_ok", restart_ok);
  report.metric("scaling_floor_ok", scaling_ok);
  report.write();
  if (!restart_ok) std::printf("FAIL: warm-restart floor missed\n");
  if (!scaling_ok) std::printf("FAIL: scaling floor missed\n");
  return restart_ok && scaling_ok ? 0 : 1;
}
