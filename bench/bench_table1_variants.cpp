// Reproduces Table I: ATP / TRP / PP accuracy of DeepSeq2, MOSS w/o FAA,
// MOSS w/o AA, MOSS w/o A and full MOSS on the eight evaluation circuits.
//
// Paper reference (DAC'25 Table I, averages):
//   DeepSeq2      ATP 79.1  TRP 76.4  PP 88.4
//   MOSS w/o FAA  ATP 45.6  TRP 57.1  PP 75.1
//   MOSS w/o AA   ATP 80.3  TRP 81.0  PP 90.7
//   MOSS w/o A    ATP 94.9  TRP 87.0  PP 95.1
//   MOSS          ATP 95.2  TRP 87.5  PP 96.3
//
// Absolute numbers here come from this repo's own EDA flow and CPU-scale
// training; the shape to check is the ordering of the variants and the
// baseline's degradation on the larger circuits.

#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;
using bench::Workbench;

namespace {

struct VariantResult {
  std::string name;
  std::vector<core::TaskAccuracy> per_circuit;
  core::TaskAccuracy avg;
};

VariantResult eval_moss(const char* name, const Workbench& wb,
                        const core::MossConfig& cfg) {
  const bench::TrainedMoss tm = bench::train_moss(wb, cfg);
  VariantResult r;
  r.name = name;
  for (std::size_t i = 0; i < wb.test.size(); ++i) {
    r.per_circuit.push_back(
        core::evaluate_tasks(tm.model, tm.test_batches[i], wb.test[i]));
    r.avg.atp += r.per_circuit.back().atp;
    r.avg.trp += r.per_circuit.back().trp;
    r.avg.pp += r.per_circuit.back().pp;
  }
  const double n = static_cast<double>(wb.test.size());
  r.avg.atp /= n;
  r.avg.trp /= n;
  r.avg.pp /= n;
  return r;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("=== Table I: performance comparison of MOSS variants ===\n");
  std::printf("(scale: %zu train circuits, %d+%d epochs, hidden=%zu)\n\n",
              scale.train_circuits, scale.pretrain_epochs, scale.align_epochs,
              scale.hidden);
  const Workbench wb = Workbench::make(scale);

  std::vector<VariantResult> results;

  {  // DeepSeq2-style baseline
    const bench::TrainedBaseline tb = bench::train_baseline(wb);
    VariantResult r;
    r.name = "DeepSeq2";
    for (std::size_t i = 0; i < wb.test.size(); ++i) {
      r.per_circuit.push_back(baseline::evaluate_baseline(
          tb.model, tb.test_batches[i], wb.test[i]));
      r.avg.atp += r.per_circuit.back().atp;
      r.avg.trp += r.per_circuit.back().trp;
      r.avg.pp += r.per_circuit.back().pp;
    }
    const double n = static_cast<double>(wb.test.size());
    r.avg.atp /= n;
    r.avg.trp /= n;
    r.avg.pp /= n;
    results.push_back(std::move(r));
    std::printf("[trained DeepSeq2 baseline]\n");
  }
  results.push_back(
      eval_moss("MOSS w/o FAA", wb, core::MossConfig::without_features()));
  std::printf("[trained MOSS w/o FAA]\n");
  results.push_back(
      eval_moss("MOSS w/o AA", wb, core::MossConfig::without_adaptive_agg()));
  std::printf("[trained MOSS w/o AA]\n");
  results.push_back(
      eval_moss("MOSS w/o A", wb, core::MossConfig::without_alignment()));
  std::printf("[trained MOSS w/o A]\n");
  results.push_back(eval_moss("MOSS", wb, core::MossConfig::full()));
  std::printf("[trained MOSS]\n");
  // DeepSeq2-style disentangling ablation: the hidden state is split into
  // function / toggle / structure bands and each task head reads only its
  // band. Same budget as full MOSS; the question is whether forcing the
  // sub-embeddings apart helps or hurts at this scale.
  results.push_back(
      eval_moss("MOSS disentangled", wb, core::MossConfig::disentangled()));
  std::printf("[trained MOSS disentangled]\n\n");

  std::printf("%-18s %6s |", "Circuit", "#Cells");
  for (const auto& r : results) std::printf(" %-22s |", r.name.c_str());
  std::printf("\n%-18s %6s |", "", "");
  for (std::size_t v = 0; v < results.size(); ++v) {
    std::printf("  ATP   TRP    PP      |");
  }
  std::printf("\n");
  bench::print_rule(26 + 24 * static_cast<int>(results.size()));
  for (std::size_t i = 0; i < wb.test.size(); ++i) {
    std::printf("%-18s %6zu |", wb.test[i].netlist.name().c_str(),
                wb.test[i].netlist.num_cells());
    for (const auto& r : results) {
      const auto& a = r.per_circuit[i];
      std::printf(" %5.1f %5.1f %5.1f      |", 100 * a.atp, 100 * a.trp,
                  100 * a.pp);
    }
    std::printf("\n");
  }
  bench::print_rule(26 + 24 * static_cast<int>(results.size()));
  std::printf("%-18s %6s |", "Average", "-");
  for (const auto& r : results) {
    std::printf(" %5.1f %5.1f %5.1f      |", 100 * r.avg.atp, 100 * r.avg.trp,
                100 * r.avg.pp);
  }
  std::printf("\n\nPaper averages: DeepSeq2 79.1/76.4/88.4 | w/o FAA "
              "45.6/57.1/75.1 | w/o AA 80.3/81.0/90.7 | w/o A 94.9/87.0/95.1 "
              "| MOSS 95.2/87.5/96.3\n");

  bench::JsonReport report("bench_table1_variants");
  for (const auto& r : results) {
    for (std::size_t i = 0; i < wb.test.size(); ++i) {
      const auto& a = r.per_circuit[i];
      report.row("circuits",
                 {{"variant", r.name},
                  {"circuit", wb.test[i].netlist.name()},
                  {"cells", static_cast<std::int64_t>(
                                wb.test[i].netlist.num_cells())},
                  {"atp", 100 * a.atp},
                  {"trp", 100 * a.trp},
                  {"pp", 100 * a.pp}});
    }
    report.row("averages", {{"variant", r.name},
                            {"atp", 100 * r.avg.atp},
                            {"trp", 100 * r.avg.trp},
                            {"pp", 100 * r.avg.pp}});
  }
  report.write();
  return 0;
}
