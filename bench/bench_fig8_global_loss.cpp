// Reproduces Fig. 8: global losses during multimodal alignment — total,
// RNC (contrastive) and RNM (matching) — converging over 45 epochs, with
// RNM reaching near zero (paper: ~0.002) and the total stabilizing.

#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;

int main() {
  Scale scale = Scale::from_env();
  scale.align_epochs = std::max(scale.align_epochs, 45);  // paper: 45
  std::printf("=== Fig. 8: global alignment losses (%d epochs) ===\n\n",
              scale.align_epochs);
  const bench::Workbench wb = bench::Workbench::make(scale);
  const bench::TrainedMoss tm = bench::train_moss(wb, core::MossConfig::full());
  const core::AlignReport& rep = tm.align_report;

  const auto print_curve = [](const char* name,
                              const std::vector<double>& v) {
    std::printf("%-18s %s  (%.4f -> %.4f)\n", name,
                bench::sparkline(v).c_str(), v.front(), v.back());
  };
  print_curve("(a) total loss", rep.total);
  print_curve("(b) RNC loss", rep.rnc);
  print_curve("(c) RNM loss", rep.rnm);
  print_curve("(d) RrNdM loss", rep.rrndm);

  std::printf("\nepoch  total     RNC       RNM       RrNdM\n");
  bench::print_rule(46);
  for (std::size_t e = 0; e < rep.total.size();
       e += std::max<std::size_t>(1, rep.total.size() / 15)) {
    std::printf("%5zu  %.6f  %.6f  %.6f  %.6f\n", e, rep.total[e], rep.rnc[e],
                rep.rnm[e], rep.rrndm[e]);
  }
  std::printf("%5zu  %.6f  %.6f  %.6f  %.6f\n", rep.total.size() - 1,
              rep.total.back(), rep.rnc.back(), rep.rnm.back(),
              rep.rrndm.back());

  const double fep = core::evaluate_fep(tm.model, tm.test_batches);
  std::printf("\nFEP on held-out Table-I pool after alignment: %.3f\n", fep);
  const bool converges = rep.total.back() < rep.total.front() &&
                         rep.rnc.back() < rep.rnc.front() &&
                         rep.rnm.back() < 0.06;
  std::printf("losses converge, RNM near zero (paper shape): %s\n",
              converges ? "yes" : "NO");

  bench::JsonReport report("bench_fig8_global_loss");
  for (std::size_t e = 0; e < rep.total.size(); ++e) {
    report.row("epochs", {{"epoch", static_cast<std::int64_t>(e)},
                          {"total", rep.total[e]},
                          {"rnc", rep.rnc[e]},
                          {"rnm", rep.rnm[e]},
                          {"rrndm", rep.rrndm[e]}});
  }
  report.metric("held_out_fep", fep);
  report.metric("losses_converge", converges);
  report.write();
  return 0;
}
