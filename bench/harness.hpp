#pragma once

#include <string>
#include <vector>

#include "baseline/deepseq.hpp"
#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "lm/encoder.hpp"

namespace moss::bench {

/// Experiment scale. Controlled by the MOSS_BENCH_SCALE environment
/// variable: 0 = smoke (seconds, loose numbers), 1 = paper run (default,
/// minutes), 2 = extended (longer training, tighter numbers).
struct Scale {
  std::size_t train_circuits = 32;
  int max_train_size = 5;
  std::uint64_t sim_cycles = 1500;
  int pretrain_epochs = 20;
  int align_epochs = 60;
  int baseline_epochs = 80;
  int lm_epochs = 3;
  std::size_t lm_pairs = 60000;
  std::size_t hidden = 32;
  int rounds = 2;
  float lr = 2e-3f;
  /// Worker threads for dataset labeling (MOSS_BENCH_THREADS, default 1).
  /// Labels are per-circuit deterministic, so this only changes wall-clock,
  /// never the benched numbers.
  std::size_t threads = 1;

  static Scale from_env();
};

/// Everything the experiment benches share: a fine-tuned encoder and the
/// labeled train/test datasets.
struct Workbench {
  lm::TextEncoder encoder{{4096, 24, 7}};
  std::vector<data::LabeledCircuit> train;
  std::vector<data::LabeledCircuit> test;  ///< the Table-I circuits
  Scale scale;

  static Workbench make(const Scale& scale);
};

/// Train a MOSS variant end-to-end (pretrain + align when enabled; when
/// alignment is off, the pretraining budget is extended by the alignment
/// epochs so every variant sees the same number of optimization passes).
struct TrainedMoss {
  core::MossModel model;
  std::vector<core::CircuitBatch> train_batches;
  std::vector<core::CircuitBatch> test_batches;
  core::PretrainReport pretrain_report;
  core::AlignReport align_report;
};

/// Optional robustness add-on for train_moss: noise-tolerant alignment
/// (corrupted code views attached to the train batches per
/// `views_per_circuit`/`view_seed`) plus oracle-proven hard negatives.
struct RobustTraining {
  core::AlignNoise noise;
  /// Corrupted views attached to every train batch before alignment.
  std::size_t views_per_circuit = 3;
  std::uint64_t view_seed = 0x5EED;
  /// Mutant-netlist negatives folded into alignment (may be empty).
  std::vector<core::HardNegative> negatives;
};

TrainedMoss train_moss(const Workbench& wb, const core::MossConfig& cfg,
                       const RobustTraining* robust = nullptr);

/// Train the DeepSeq2-style baseline on the same circuits (AIG modality).
struct TrainedBaseline {
  baseline::DeepSeqModel model;
  std::vector<baseline::AigBatch> train_batches;
  std::vector<baseline::AigBatch> test_batches;
  core::PretrainReport report;
};

TrainedBaseline train_baseline(const Workbench& wb);

/// Render a loss curve as a compact ASCII sparkline row (for the figure
/// benches' output).
std::string sparkline(const std::vector<double>& values, int width = 45);

/// Printf helper writing a row of a markdown-ish table.
void print_rule(int cols);

}  // namespace moss::bench
