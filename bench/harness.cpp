#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace moss::bench {

Scale Scale::from_env() {
  Scale s;
  const char* env = std::getenv("MOSS_BENCH_SCALE");
  const int level = env ? std::atoi(env) : 1;
  if (level <= 0) {  // smoke
    s.train_circuits = 8;
    s.max_train_size = 2;
    s.sim_cycles = 400;
    s.pretrain_epochs = 4;
    s.align_epochs = 6;
    s.baseline_epochs = 10;
    s.lm_epochs = 1;
    s.lm_pairs = 15000;
    s.hidden = 16;
    s.rounds = 1;
  } else if (level >= 2) {  // extended
    s.train_circuits = 42;
    s.sim_cycles = 4000;
    s.pretrain_epochs = 30;
    s.align_epochs = 80;
    s.baseline_epochs = 110;
    s.hidden = 40;
    s.rounds = 3;
  }
  if (const char* t = std::getenv("MOSS_BENCH_THREADS")) {
    s.threads = static_cast<std::size_t>(std::max(1, std::atoi(t)));
  }
  return s;
}

Workbench Workbench::make(const Scale& scale) {
  Workbench wb;
  wb.scale = scale;
  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = scale.sim_cycles;
  dcfg.threads = scale.threads;
  wb.train = data::build_dataset(
      data::corpus_specs(scale.train_circuits, 99, 1, scale.max_train_size),
      lib, dcfg);
  wb.test = data::build_dataset(data::table1_specs(), lib, dcfg);

  std::vector<std::string> corpus;
  corpus.reserve(wb.train.size());
  for (const auto& lc : wb.train) corpus.push_back(lc.module_text);
  lm::FineTuneConfig ftc;
  ftc.epochs = scale.lm_epochs;
  ftc.max_pairs_per_epoch = scale.lm_pairs;
  Rng rng(5);
  lm::fine_tune(wb.encoder, corpus, ftc, rng);
  return wb;
}

TrainedMoss train_moss(const Workbench& wb, const core::MossConfig& cfg_in,
                       const RobustTraining* robust) {
  core::MossConfig cfg = cfg_in;
  cfg.hidden = wb.scale.hidden;
  cfg.rounds = wb.scale.rounds;
  TrainedMoss out{core::MossModel(cfg, cell::standard_library(), wb.encoder),
                  {},
                  {},
                  {},
                  {}};
  for (const auto& lc : wb.train) {
    out.train_batches.push_back(
        core::build_batch(lc, wb.encoder, cfg.features));
  }
  for (const auto& lc : wb.test) {
    out.test_batches.push_back(
        core::build_batch(lc, wb.encoder, cfg.features));
  }
  if (robust != nullptr) {
    for (std::size_t i = 0; i < wb.train.size(); ++i) {
      core::attach_corrupt_views(out.train_batches[i], wb.train[i],
                                 robust->views_per_circuit,
                                 robust->view_seed);
    }
  }
  core::PretrainConfig pcfg;
  pcfg.lr = wb.scale.lr;
  pcfg.epochs = cfg.alignment
                    ? wb.scale.pretrain_epochs
                    : wb.scale.pretrain_epochs + wb.scale.align_epochs;
  out.pretrain_report = core::pretrain(out.model, out.train_batches, pcfg);
  if (cfg.alignment) {
    core::AlignConfig acfg;
    acfg.epochs = wb.scale.align_epochs;
    acfg.lr = wb.scale.lr;
    acfg.batch_size = std::min<std::size_t>(8, out.train_batches.size());
    if (robust != nullptr) acfg.noise = robust->noise;
    Rng rng(6);
    out.align_report =
        core::align(out.model, out.train_batches, acfg, rng,
                    robust != nullptr && !robust->negatives.empty()
                        ? &robust->negatives
                        : nullptr);
  }
  return out;
}

TrainedBaseline train_baseline(const Workbench& wb) {
  baseline::DeepSeqConfig bcfg;
  bcfg.hidden = wb.scale.hidden;
  bcfg.rounds = wb.scale.rounds;
  TrainedBaseline out{baseline::DeepSeqModel(bcfg), {}, {}, {}};
  for (const auto& lc : wb.train) {
    out.train_batches.push_back(
        baseline::build_aig_batch(lc, 1, wb.scale.sim_cycles));
  }
  for (const auto& lc : wb.test) {
    out.test_batches.push_back(
        baseline::build_aig_batch(lc, 1, wb.scale.sim_cycles));
  }
  std::vector<core::CircuitBatch> data;
  for (const auto& ab : out.train_batches) data.push_back(ab.batch);
  core::PretrainConfig pcfg;
  pcfg.epochs = wb.scale.baseline_epochs;
  pcfg.lr = wb.scale.lr;
  out.report = core::pretrain_model(out.model, data, pcfg);
  return out;
}

std::string sparkline(const std::vector<double>& values, int width) {
  if (values.empty()) return "(empty)";
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(hi - lo, 1e-12);
  std::string out;
  const int n = std::min<int>(width, static_cast<int>(values.size()));
  for (int i = 0; i < n; ++i) {
    const std::size_t idx =
        static_cast<std::size_t>(i) * values.size() / static_cast<std::size_t>(n);
    const int lvl = static_cast<int>((values[idx] - lo) / span * 7.999);
    out += kLevels[std::clamp(lvl, 0, 7)];
  }
  return out;
}

void print_rule(int cols) {
  for (int i = 0; i < cols; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace moss::bench
