// Serving throughput: cold (no embedding cache) vs warm (content-addressed
// cache pre-populated) QPS through the moss::serve inference engine, on a
// 32-circuit FEP-rank pool plus the per-circuit endpoints.
//
// The FEP-rank row is the headline: a cold rank query embeds every pool
// member (32 GNN forwards); a warm one is pure cache lookups + pair scores,
// so the warm/cold ratio measures exactly what the cache buys. Inference
// is deterministic, so warm responses are bit-identical to cold ones (the
// serve_test suite asserts this; here we only time it).
//
// A second table measures degraded mode: EMBED/FEP-rank QPS with a healthy
// session vs the same traffic served entirely from stale cache entries
// while the session's circuit breaker is open (allow_stale). That ratio is
// the price of an outage for low-priority traffic — how much throughput
// survives when every forward pass is failing.
//
// A third table isolates cross-request fused batching on the cold path:
// the same cold FEP-rank traffic through a sequential-dispatch engine vs a
// fused one (pool members deduped per window, one stacked propagation per
// group). The fused/sequential ratio is machine-independent and carries an
// acceptance floor (>= 5x) via the exit code in optimized builds
// (MOSS_BENCH_NO_FLOOR=1 to waive). Note the cold-vs-warm model: the warm
// path amortizes *recomputation* through the cache and is naturally
// per-request; fused batching instead amortizes *cold* compute across
// concurrent requests — the two multiply, they do not compete.
//
// Output: a small table (stdout). CI captures it as results/bench_serve.txt.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core_util/fault.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

using namespace moss;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Submit every request, then wait for all futures (exercises the
/// micro-batching path rather than lock-step call()).
double run_pass(serve::InferenceEngine& eng,
                const std::vector<serve::Request>& reqs) {
  const auto t0 = Clock::now();
  std::vector<std::future<serve::Response>> futs;
  futs.reserve(reqs.size());
  for (const auto& r : reqs) futs.push_back(eng.submit(r));
  for (auto& f : futs) f.get();
  return seconds_since(t0);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const bool smoke = scale.sim_cycles < 1000;
  const std::size_t kPool = 32;
  const int warm_rounds = smoke ? 2 : 5;

  std::printf("=== Serving throughput: cold vs warm embedding cache ===\n\n");

  // A 32-circuit pool cycling through the design families. Weights stay at
  // their deterministic fresh init — QPS does not depend on training.
  const auto& lib = cell::standard_library();
  core::WorkflowConfig cfg;
  cfg.model.hidden = 16;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = smoke ? 150 : 400;
  cfg.dataset.threads = scale.threads;
  cfg.encoder = {2048, 16, 9};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 10000;

  const auto fams = data::families();
  std::vector<data::DesignSpec> specs;
  for (std::size_t i = 0; i < kPool; ++i) {
    data::DesignSpec s;
    s.family = fams[i % fams.size()];
    s.size_hint = 1 + static_cast<int>(i / fams.size()) % 2;
    s.seed = 0xCAFE + i;
    s.name = s.family + "_srv" + std::to_string(i);
    specs.push_back(std::move(s));
  }
  std::fprintf(stderr, "[labeling %zu circuits]\n", kPool);
  const auto lcs = data::build_dataset(specs, lib, cfg.dataset);

  std::vector<std::string> corpus;
  for (const auto& lc : lcs) corpus.push_back(lc.module_text);
  const auto session = serve::MossSession::load(cfg, corpus, "");

  serve::ModelRegistry registry;
  registry.install("default", session);
  std::vector<std::shared_ptr<const core::CircuitBatch>> members;
  std::vector<std::shared_ptr<const data::LabeledCircuit>> circuits;
  for (const auto& lc : lcs) {
    circuits.push_back(std::make_shared<data::LabeledCircuit>(lc));
    members.push_back(
        std::make_shared<core::CircuitBatch>(session->build(lc)));
  }

  serve::EngineConfig ecfg;
  ecfg.queue_capacity = 4 * kPool;
  // The cache and degraded tables keep sequential dispatch so their rows
  // stay comparable with the recorded baselines; the fused path gets its
  // own table below.
  ecfg.fused_batching = false;
  serve::EmbeddingCache cache(256u << 20);
  serve::InferenceEngine cold(registry, /*cache=*/nullptr, ecfg);
  serve::InferenceEngine warm(registry, &cache, ecfg);
  cold.register_pool("pool", members);
  warm.register_pool("pool", members);

  struct Row {
    const char* endpoint;
    std::vector<serve::Request> reqs;
  };
  std::vector<Row> rows;
  {
    Row rank{"fep_rank", {}};
    Row atp{"atp", {}};
    Row embed{"embed", {}};
    for (std::size_t i = 0; i < kPool; ++i) {
      serve::Request r;
      r.kind = serve::RequestKind::kFepRank;
      r.rtl_text = lcs[i].module_text;
      r.pool = "pool";
      rank.reqs.push_back(r);
      serve::Request a;
      a.kind = serve::RequestKind::kAtp;
      a.batch = members[i];
      atp.reqs.push_back(a);
      serve::Request e;
      e.kind = serve::RequestKind::kEmbed;
      e.batch = members[i];
      embed.reqs.push_back(e);
    }
    rows.push_back(std::move(rank));
    rows.push_back(std::move(atp));
    rows.push_back(std::move(embed));
  }

  std::printf("pool: %zu circuits | max_batch %zu | max_delay %d ms | "
              "cache %zu MB | warm rounds x%d\n\n",
              kPool, ecfg.max_batch, ecfg.max_delay_ms,
              cache.byte_budget() >> 20, warm_rounds);
  std::printf("%-10s | %10s | %10s | %8s\n", "endpoint", "cold qps",
              "warm qps", "speedup");
  bench::print_rule(48);

  bench::JsonReport report("bench_serve");
  double rank_speedup = 0.0;
  for (const Row& row : rows) {
    const double cold_s = run_pass(cold, row.reqs);
    run_pass(warm, row.reqs);  // populate the cache
    double warm_s = 0.0;
    for (int r = 0; r < warm_rounds; ++r) warm_s += run_pass(warm, row.reqs);
    const double n = static_cast<double>(row.reqs.size());
    const double cold_qps = n / cold_s;
    const double warm_qps = n * warm_rounds / warm_s;
    const double speedup = warm_qps / cold_qps;
    if (row.endpoint == rows.front().endpoint) rank_speedup = speedup;
    std::printf("%-10s | %10.1f | %10.1f | %7.1fx\n", row.endpoint, cold_qps,
                warm_qps, speedup);
    report.row("cache", {{"endpoint", std::string(row.endpoint)},
                         {"cold_qps", cold_qps},
                         {"warm_qps", warm_qps},
                         {"speedup", speedup}});
  }
  bench::print_rule(48);

  const serve::CacheStats cs = cache.stats();
  std::printf("\ncache: %llu hits, %llu misses, %llu evictions, %zu entries, "
              "%.1f KB\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cs.entries,
              static_cast<double>(cs.bytes) / 1024.0);
  std::printf("fep_rank warm/cold speedup: %.1fx (acceptance floor: 5x)\n",
              rank_speedup);
  report.metric("cache_hits", static_cast<std::int64_t>(cs.hits));
  report.metric("cache_misses", static_cast<std::int64_t>(cs.misses));
  report.metric("cache_entries", static_cast<std::int64_t>(cs.entries));

  // --- Degraded mode: healthy vs breaker-open serve-stale throughput -----
  //
  // A fresh engine with allow_stale: warm the cache, time the healthy path,
  // then make every forward pass fail (probabilistic fault site at p=1.0),
  // trip the breaker with ATP traffic, and time the same EMBED/FEP-rank
  // requests again — now answered purely from stale cache entries.
  std::printf("\n=== Degraded mode: healthy vs breaker-open serve-stale ===\n\n");

  serve::ModelRegistry dreg;
  serve::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_cooldown_ms = 600000;  // stays open for the whole measurement
  dreg.set_breaker_config(bcfg);
  dreg.install("default", session);
  serve::EmbeddingCache dcache(256u << 20);
  serve::EngineConfig dcfg = ecfg;
  dcfg.allow_stale = true;
  serve::InferenceEngine deg(dreg, &dcache, dcfg);
  deg.register_pool("pool", members);

  bool degraded_ok = true;
  std::printf("%-10s | %12s | %12s | %9s\n", "endpoint", "healthy qps",
              "stale qps", "retained");
  bench::print_rule(52);
  for (std::size_t which = 0; which < 2; ++which) {
    const Row& row = which == 0 ? rows[2] : rows[0];  // embed, fep_rank
    run_pass(deg, row.reqs);  // populate the cache (healthy warm-up)
    double healthy_s = 0.0;
    for (int r = 0; r < warm_rounds; ++r) healthy_s += run_pass(deg, row.reqs);

    // Kill every forward pass and trip the breaker with ATP traffic.
    testing::arm_fault_prob("serve.session.forward", 1.0, /*seed=*/7);
    for (int i = 0; i < bcfg.failure_threshold; ++i) {
      try {
        deg.call(rows[1].reqs[0]);
        degraded_ok = false;  // forward faults armed: this must fail
      } catch (const std::exception&) {
      }
    }
    double stale_s = 0.0;
    for (int r = 0; r < warm_rounds; ++r) stale_s += run_pass(deg, row.reqs);
    // Spot-check that the stale pass really was degraded serving.
    if (!deg.call(row.reqs[0]).degraded) degraded_ok = false;
    testing::disarm_all_faults();
    dreg.install("default", session);  // reset the breaker for the next row

    const double n = static_cast<double>(row.reqs.size()) * warm_rounds;
    const double healthy_qps = n / healthy_s;
    const double stale_qps = n / stale_s;
    std::printf("%-10s | %12.1f | %12.1f | %8.2fx\n", row.endpoint,
                healthy_qps, stale_qps, stale_qps / healthy_qps);
    report.row("degraded", {{"endpoint", std::string(row.endpoint)},
                            {"healthy_qps", healthy_qps},
                            {"stale_qps", stale_qps},
                            {"retained", stale_qps / healthy_qps}});
  }
  bench::print_rule(52);
  std::printf("degraded responses flagged and typed: %s\n",
              degraded_ok ? "yes" : "NO (failure)");

  // --- Cross-request fused batching: cold sequential vs cold fused -------
  //
  // No cache on either engine, identical traffic: every window's pool
  // members are recomputed, so the ratio isolates exactly what stacking
  // buys — per-window unit dedup plus one fused propagation per group
  // instead of one forward per pool member per request.
  std::printf("\n=== Cold FEP-rank: sequential vs fused dispatch ===\n\n");

  serve::EngineConfig scfg = ecfg;  // fused_batching already false
  serve::EngineConfig fcfg = ecfg;
  fcfg.fused_batching = true;
  serve::InferenceEngine cold_seq(registry, /*cache=*/nullptr, scfg);
  serve::InferenceEngine cold_fused(registry, /*cache=*/nullptr, fcfg);
  cold_seq.register_pool("pool", members);
  cold_fused.register_pool("pool", members);

  const std::vector<serve::Request>& rank_reqs = rows[0].reqs;
  const int cold_rounds = smoke ? 1 : 3;
  double seq_s = 0.0, fused_s = 0.0;
  for (int r = 0; r < cold_rounds; ++r) {
    seq_s += run_pass(cold_seq, rank_reqs);
    fused_s += run_pass(cold_fused, rank_reqs);
  }
  const double n_rank =
      static_cast<double>(rank_reqs.size()) * cold_rounds;
  const double cold_seq_qps = n_rank / seq_s;
  const double cold_fused_qps = n_rank / fused_s;
  const double fused_speedup = cold_fused_qps / cold_seq_qps;
  const serve::MetricsSnapshot fsnap = cold_fused.metrics().snapshot();

  std::printf("%-12s | %12s | %12s | %8s\n", "endpoint", "seq qps",
              "fused qps", "speedup");
  bench::print_rule(54);
  std::printf("%-12s | %12.1f | %12.1f | %7.1fx\n", "fep_rank",
              cold_seq_qps, cold_fused_qps, fused_speedup);
  bench::print_rule(54);
  std::printf("fused: %llu stacked batches, %llu rows, %llu requests "
              "(recorded sequential baseline: 102 qps)\n",
              static_cast<unsigned long long>(fsnap.fused_batches),
              static_cast<unsigned long long>(fsnap.fused_rows),
              static_cast<unsigned long long>(fsnap.fused_requests));
  report.row("cold_batched", {{"endpoint", std::string("fep_rank")},
                              {"cold_seq_qps", cold_seq_qps},
                              {"cold_fused_qps", cold_fused_qps},
                              {"speedup", fused_speedup},
                              {"baseline_seq_qps", 102.0}});
  report.metric("fused_batches",
                static_cast<std::int64_t>(fsnap.fused_batches));
  report.metric("fused_rows", static_cast<std::int64_t>(fsnap.fused_rows));

#ifdef NDEBUG
  const bool enforce = std::getenv("MOSS_BENCH_NO_FLOOR") == nullptr;
#else
  const bool enforce = false;  // unoptimized builds measure nothing useful
#endif
  const bool batched_ok = fused_speedup >= 5.0;
  report.metric("fused_floor_speedup", fused_speedup);
  report.metric("fused_floor_ok", batched_ok);
  report.metric("fused_floor_enforced", enforce);
  std::printf("cold fused/sequential FEP-rank speedup: %.1fx (acceptance "
              "floor: 5x, %s)\n",
              fused_speedup, enforce ? "enforced" : "not enforced");

  report.metric("fep_rank_warm_speedup", rank_speedup);
  report.metric("degraded_ok", degraded_ok);
  report.write();
  const bool ok =
      rank_speedup >= 5.0 && degraded_ok && (batched_ok || !enforce);
  return ok ? 0 : 1;
}
