// Robustness harness: does noise-tolerant alignment actually buy anything
// on imperfect RTL?
//
// Two models are trained on the same workbench:
//
//   clean   — MOSS full(), the Table-I training recipe, untouched.
//   robust  — the same recipe plus the imperfection model: corrupted code
//             views attached to every train batch (data::corrupt_module,
//             training seed), the rejection terms of core::align enabled,
//             and oracle-proven mutant netlists (sat::mine_hard_negatives)
//             folded in as in-batch hard negatives.
//
// Both are then scored on an EVAL pool the robust model never saw: the
// Table-I circuits with corrupted views drawn from a disjoint seed, plus
// mutant netlists mined from the eval circuits themselves.
//
//   FEP(clean inputs)   retrieval@1 on the unmodified eval pool — the
//                       robustness training must not cost clean accuracy.
//   corrupt rejection   fraction of (circuit, corrupted view) pairs where
//                       the clean RTL outscores the corrupted one against
//                       the circuit's own netlist (evaluate_corrupt_rejection).
//   detection AUC       Mann–Whitney AUC separating genuine pairs from
//                       (corrupted RTL, netlist) and (RTL, mutant netlist)
//                       pairs (evaluate_detection_auc).
//
// Floors (exit 1 when missed, any MOSS_BENCH_SCALE):
//   - robust rejection  >= clean rejection  (training must not hurt it)
//   - robust AUC        >= clean AUC - 0.02 and >= 0.55 absolute
//   - robust clean FEP  >= clean FEP - 0.25 (one miss on the 8-circuit
//     Table-I pool costs 0.125; allow two at smoke scale)
//   - corruption determinism: same (seed, module) twice -> byte-identical
//     Verilog and provenance
//
// Output: stdout tables + results/bench_robust.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/corrupt.hpp"
#include "data/mutate.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "rtl/printer.hpp"
#include "sat/mine.hpp"

using namespace moss;

namespace {

struct Scores {
  double fep_clean = 0.0;
  double rejection = 0.0;
  double auc = 0.0;
};

Scores score_model(const core::MossModel& model,
                   const std::vector<core::CircuitBatch>& clean_pool,
                   const std::vector<core::CircuitBatch>& eval_pool,
                   const std::vector<core::CircuitBatch>& mutants,
                   const std::vector<std::size_t>& owners) {
  Scores s;
  s.fep_clean = core::evaluate_fep(model, clean_pool);
  s.rejection = core::evaluate_corrupt_rejection(model, eval_pool);
  s.auc = core::evaluate_detection_auc(model, eval_pool, mutants, owners);
  return s;
}

}  // namespace

int main() {
  bench::Scale scale = bench::Scale::from_env();
  // Alignment is where the rejection terms live, and at smoke scale the
  // default budget is a handful of Adam steps — too few for ANY alignment
  // signal to move the weights. Both models get the same raised budget, so
  // the comparison stays fair.
  scale.align_epochs = std::max(scale.align_epochs, 40);
  bench::JsonReport report("bench_robust");

  std::printf("=== Robustness: noise-tolerant alignment on imperfect RTL "
              "===\n");
  std::printf("(scale: %zu train circuits, %d+%d epochs, hidden=%zu)\n\n",
              scale.train_circuits, scale.pretrain_epochs, scale.align_epochs,
              scale.hidden);

  const bench::Workbench wb = bench::Workbench::make(scale);

  // ---- 0. corruption determinism (cheap, gate everything on it) ----------
  {
    const rtl::Module& probe = wb.train.front().module;
    data::CorruptConfig ccfg;
    ccfg.seed = 0xD0;
    ccfg.severity = 2;
    const data::CorruptedRtl a = data::corrupt_module(probe, ccfg);
    const data::CorruptedRtl b = data::corrupt_module(probe, ccfg);
    const bool deterministic =
        rtl::to_verilog(a.module) == rtl::to_verilog(b.module) &&
        data::provenance_json(probe.name, ccfg.seed, ccfg.severity,
                              a.applied) ==
            data::provenance_json(probe.name, ccfg.seed, ccfg.severity,
                                  b.applied);
    report.metric("corrupt_deterministic", deterministic);
    std::printf("corruption determinism: %s\n\n",
                deterministic ? "byte-identical" : "MISMATCH");
    if (!deterministic) {
      report.metric("pass", false);
      report.write();
      return 1;
    }
  }

  // ---- 1. oracle-proven hard negatives from the TRAIN circuits -----------
  const core::MossConfig cfg = core::MossConfig::full();
  bench::RobustTraining robust;
  robust.noise.enabled = true;
  robust.noise.weight = 1.0f;
  robust.noise.corrupt_fraction = 0.75f;
  const std::size_t train_mine_cap = scale.train_circuits <= 8 ? 4 : 8;
  const std::size_t negatives_per_circuit = 2;
  std::size_t train_candidates = 0, train_proven = 0;
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = scale.sim_cycles;
  for (std::size_t i = 0; i < wb.train.size() && i < train_mine_cap; ++i) {
    sat::MinerConfig mcfg;
    mcfg.seed = 0xA11 + i;
    mcfg.candidates = negatives_per_circuit * 3;
    const sat::MineReport rep =
        sat::mine_hard_negatives(wb.train[i].netlist, /*scorer=*/{}, mcfg);
    train_candidates += rep.candidates;
    train_proven += rep.proven_inequivalent;
    std::size_t kept = 0;
    for (const sat::MinedNegative& neg : rep.negatives) {
      if (kept >= negatives_per_circuit) break;
      const netlist::Netlist mutant = data::apply_mutation(
          wb.train[i].netlist, neg.mutation, "__hn" + std::to_string(kept));
      const data::LabeledCircuit lc = data::label_netlist(mutant, dcfg);
      robust.negatives.push_back(
          {i, core::build_batch(lc, wb.encoder, cfg.features)});
      ++kept;
    }
  }
  std::printf("train-side mining: %zu candidates, %zu proven inequivalent, "
              "%zu folded into alignment\n\n",
              train_candidates, train_proven, robust.negatives.size());
  report.metric("train_mine_candidates",
                static_cast<std::int64_t>(train_candidates));
  report.metric("train_mine_proven",
                static_cast<std::int64_t>(train_proven));
  report.metric("train_negatives",
                static_cast<std::int64_t>(robust.negatives.size()));

  // ---- 2. train both models ----------------------------------------------
  std::printf("[training clean model]\n");
  const bench::TrainedMoss clean = bench::train_moss(wb, cfg);
  std::printf("[training robust model]\n");
  const bench::TrainedMoss tough = bench::train_moss(wb, cfg, &robust);
  std::printf("align loss     clean %.4f -> %.4f   robust %.4f -> %.4f\n",
              clean.align_report.total.front(), clean.align_report.total.back(),
              tough.align_report.total.front(), tough.align_report.total.back());
  if (!tough.align_report.reject.empty()) {
    std::printf("rejection loss  %s  %.4f -> %.4f\n\n",
                bench::sparkline(tough.align_report.reject).c_str(),
                tough.align_report.reject.front(),
                tough.align_report.reject.back());
  }

  // ---- 3. eval pool: Table-I circuits + DISJOINT-seed corruption ---------
  // Training corrupts with RobustTraining::view_seed (0x5EED); the eval
  // views use a different seed so the robust model is scored on corrupted
  // texts it never trained against.
  std::vector<core::CircuitBatch> eval_pool = clean.test_batches;
  std::size_t eval_views = 0;
  for (std::size_t i = 0; i < wb.test.size(); ++i) {
    eval_views += core::attach_corrupt_views(eval_pool[i], wb.test[i],
                                             /*count=*/3,
                                             /*seed=*/0xE7A1 + 17 * i);
  }

  // Eval-side mutant netlists, mined from the eval circuits themselves.
  std::vector<core::CircuitBatch> eval_mutants;
  std::vector<std::size_t> eval_owners;
  for (std::size_t i = 0; i < wb.test.size(); ++i) {
    sat::MinerConfig mcfg;
    mcfg.seed = 0xB22 + i;
    mcfg.candidates = 4;
    const sat::MineReport rep =
        sat::mine_hard_negatives(wb.test[i].netlist, /*scorer=*/{}, mcfg);
    for (const sat::MinedNegative& neg : rep.negatives) {
      const netlist::Netlist mutant = data::apply_mutation(
          wb.test[i].netlist, neg.mutation,
          "__ev" + std::to_string(eval_mutants.size()));
      const data::LabeledCircuit lc = data::label_netlist(mutant, dcfg);
      eval_mutants.push_back(core::build_batch(lc, wb.encoder, cfg.features));
      eval_owners.push_back(i);
      break;  // one mutant per eval circuit keeps the AUC class balance sane
    }
  }
  std::printf("eval pool: %zu circuits, %zu corrupted views, %zu mutant "
              "netlists\n\n",
              eval_pool.size(), eval_views, eval_mutants.size());
  report.metric("eval_views", static_cast<std::int64_t>(eval_views));
  report.metric("eval_mutants",
                static_cast<std::int64_t>(eval_mutants.size()));

  // ---- 4. score both models ----------------------------------------------
  const Scores cs = score_model(clean.model, clean.test_batches, eval_pool,
                                eval_mutants, eval_owners);
  const Scores rs = score_model(tough.model, tough.test_batches, eval_pool,
                                eval_mutants, eval_owners);

  std::printf("%-10s %12s %12s %12s\n", "model", "FEP(clean)", "rejection",
              "det. AUC");
  bench::print_rule(50);
  std::printf("%-10s %12.3f %12.3f %12.3f\n", "clean", cs.fep_clean,
              cs.rejection, cs.auc);
  std::printf("%-10s %12.3f %12.3f %12.3f\n\n", "robust", rs.fep_clean,
              rs.rejection, rs.auc);
  for (const auto& [name, s] :
       {std::pair<const char*, const Scores&>{"clean", cs},
        std::pair<const char*, const Scores&>{"robust", rs}}) {
    report.row("models", {{"model", std::string(name)},
                          {"fep_clean", s.fep_clean},
                          {"rejection", s.rejection},
                          {"detection_auc", s.auc}});
  }

  // ---- 5. floors ----------------------------------------------------------
  const bool rejection_ok = rs.rejection >= cs.rejection;
  const bool auc_ok = rs.auc >= cs.auc - 0.02 && rs.auc >= 0.55;
  const bool fep_ok = rs.fep_clean >= cs.fep_clean - 0.25;
  report.metric("floor_rejection", rejection_ok);
  report.metric("floor_auc", auc_ok);
  report.metric("floor_fep_clean", fep_ok);
  std::printf("floors: rejection %s (%.3f vs %.3f), AUC %s (%.3f vs %.3f), "
              "clean FEP %s (%.3f vs %.3f)\n",
              rejection_ok ? "ok" : "MISS", rs.rejection, cs.rejection,
              auc_ok ? "ok" : "MISS", rs.auc, cs.auc,
              fep_ok ? "ok" : "MISS", rs.fep_clean, cs.fep_clean);

  const bool ok = rejection_ok && auc_ok && fep_ok;
  report.metric("pass", ok);
  if (!report.write()) {
    std::fprintf(stderr, "warning: could not write results/bench_robust.json\n");
  }
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
