// Ablation bench for MOSS design choices beyond the paper's Table I
// variants (the knobs DESIGN.md calls out):
//   1. propagation rounds K (paper uses ~10; diminishing returns expected),
//   2. attention vs mean aggregation,
//   3. adaptive-aggregator cluster budget.
// Each row: accuracy on the Table-I circuits after identical training.

#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;
using bench::Workbench;

namespace {

core::TaskAccuracy run_variant(const Workbench& wb, core::MossConfig cfg) {
  // Alignment off: this bench isolates the GNN design choices.
  cfg.alignment = false;
  const bench::TrainedMoss tm = bench::train_moss(wb, cfg);
  core::TaskAccuracy avg;
  for (std::size_t i = 0; i < wb.test.size(); ++i) {
    const auto a =
        core::evaluate_tasks(tm.model, tm.test_batches[i], wb.test[i]);
    avg.atp += a.atp;
    avg.trp += a.trp;
    avg.pp += a.pp;
  }
  const double n = static_cast<double>(wb.test.size());
  avg.atp /= n;
  avg.trp /= n;
  avg.pp /= n;
  return avg;
}

}  // namespace

int main() {
  Scale scale = Scale::from_env();
  std::printf("=== Ablations: rounds / aggregation / cluster budget ===\n\n");
  Workbench wb = Workbench::make(scale);

  std::printf("%-34s %6s %6s %6s\n", "configuration", "ATP", "TRP", "PP");
  bench::print_rule(56);

  bench::JsonReport report("bench_ablation");
  const auto row = [&](const char* name, const core::TaskAccuracy& a) {
    std::printf("%-34s %6.1f %6.1f %6.1f\n", name, 100 * a.atp, 100 * a.trp,
                100 * a.pp);
    report.row("ablations", {{"configuration", std::string(name)},
                             {"atp", 100 * a.atp},
                             {"trp", 100 * a.trp},
                             {"pp", 100 * a.pp}});
  };

  {  // rounds sweep (overrides the Scale default through the workbench)
    for (const int k : {1, 2, 3}) {
      Workbench& w = wb;
      const int saved = w.scale.rounds;
      w.scale.rounds = k;
      core::MossConfig cfg;
      char name[64];
      std::snprintf(name, sizeof name, "rounds K=%d", k);
      row(name, run_variant(w, cfg));
      w.scale.rounds = saved;
    }
  }
  {  // aggregation type
    core::MossConfig mean_cfg;
    mean_cfg.attention = false;
    row("mean aggregation (no attention)", run_variant(wb, mean_cfg));
    core::MossConfig attn_cfg;
    row("attention aggregation", run_variant(wb, attn_cfg));
  }
  {  // cluster budget
    for (const std::size_t g : {std::size_t{2}, std::size_t{6}}) {
      core::MossConfig cfg;
      cfg.features.max_clusters = g;
      char name[64];
      std::snprintf(name, sizeof name, "adaptive clusters <= %zu", g);
      row(name, run_variant(wb, cfg));
    }
  }
  {  // node feature content: what does each information source buy?
    core::MossConfig none = core::MossConfig::without_features();
    row("features: none (bias only)", run_variant(wb, none));
    core::MossConfig structural;
    structural.features.lm_features = false;
    row("features: structural only", run_variant(wb, structural));
    core::MossConfig onehot;
    onehot.features.lm_features = false;
    onehot.features.type_onehot = true;
    row("features: structural + one-hot", run_variant(wb, onehot));
    core::MossConfig lm;
    row("features: structural + LM", run_variant(wb, lm));
  }
  std::printf("\nExpected shapes: K>=2 beats K=1 (feedback needs a second "
              "pass); attention >= mean; more clusters >= fewer; each added "
              "feature source helps.\n");
  report.write();
  return 0;
}
