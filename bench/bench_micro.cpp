// Microbenchmarks of the substrate pipeline (google-benchmark): synthesis,
// gate-level simulation, STA, AIG conversion, LM encoding, GNN forward and
// the parallel execution layer — the per-stage costs behind the experiment
// benches.
//
// `--threads N` (in addition to the usual google-benchmark flags) sets the
// worker count of the *_Parallel variants, so serial-vs-parallel speedup can
// be read off a single run:
//   bench_micro --threads 4 --benchmark_filter='Pretrain|Dbscan'

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "baseline/deepseq.hpp"
#include "clustering/clustering.hpp"
#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

using namespace moss;

namespace {

std::size_t g_threads = 4;  // overridden by --threads N

/// Benchmarks registered with Arg(0) resolve the worker count from the
/// --threads flag at run time (registration happens before main() parses
/// flags, so the flag value cannot be baked into the Arg list).
std::size_t resolve_threads(std::int64_t arg) {
  return arg > 0 ? static_cast<std::size_t>(arg) : g_threads;
}

const data::LabeledCircuit& labeled(int size) {
  static std::unordered_map<int, data::LabeledCircuit> cache;
  const auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  data::DesignSpec s{"alu", size, 77, "alu_bench" + std::to_string(size)};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  return cache.emplace(size, data::label_circuit(
                                 s, cell::standard_library(), cfg))
      .first->second;
}

lm::TextEncoder& encoder() {
  static lm::TextEncoder enc({4096, 24, 7});
  return enc;
}

void BM_Synthesize(benchmark::State& state) {
  data::DesignSpec s{"alu", static_cast<int>(state.range(0)), 77, "alu_s"};
  const rtl::Module m = data::generate(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::synthesize(m, cell::standard_library()));
  }
  state.SetLabel(std::to_string(
      synth::synthesize(m, cell::standard_library()).num_cells()) +
      " cells");
}
BENCHMARK(BM_Synthesize)->Arg(1)->Arg(3)->Arg(5);

void BM_SimulateCycle(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  moss::sim::Simulator simulator(lc.netlist);
  std::vector<std::uint8_t> pis(lc.netlist.inputs().size(), 0);
  Rng rng(1);
  for (auto _ : state) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    simulator.step(pis);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lc.netlist.num_cells()));
}
BENCHMARK(BM_SimulateCycle)->Arg(1)->Arg(3)->Arg(5);

void BM_Sta(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sta::TimingAnalysis ta(lc.netlist);
    benchmark::DoNotOptimize(ta.worst_arrival());
  }
}
BENCHMARK(BM_Sta)->Arg(1)->Arg(3)->Arg(5);

void BM_AigConversion(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::from_netlist(lc.netlist));
  }
}
BENCHMARK(BM_AigConversion)->Arg(1)->Arg(3)->Arg(5);

void BM_LmEncode(benchmark::State& state) {
  const auto& lc = labeled(2);
  for (auto _ : state) {
    encoder().invalidate_cache();  // measure the un-cached path
    benchmark::DoNotOptimize(encoder().encode(lc.module_text));
  }
}
BENCHMARK(BM_LmEncode);

void BM_BuildBatch(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::FeatureConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_batch(lc, encoder(), cfg));
  }
}
BENCHMARK(BM_BuildBatch)->Arg(1)->Arg(3);

void BM_GnnForward(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  const core::CircuitBatch batch =
      core::build_batch(lc, encoder(), cfg.features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.node_embeddings(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.graph.num_nodes));
}
BENCHMARK(BM_GnnForward)->Arg(1)->Arg(3);

void BM_TrainStep(benchmark::State& state) {
  const auto& lc = labeled(2);
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  std::vector<core::CircuitBatch> data{
      core::build_batch(lc, encoder(), cfg.features)};
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pretrain(model, data, pcfg));
  }
}
BENCHMARK(BM_TrainStep);

// ---------------------------------------------------------------------------
// Parallel execution layer: serial vs --threads N on the same workload.
// ---------------------------------------------------------------------------

std::vector<core::CircuitBatch>& pretrain_corpus(core::MossConfig& cfg) {
  cfg.hidden = 32;
  cfg.rounds = 2;
  static std::vector<core::CircuitBatch> batches = [&] {
    std::vector<core::CircuitBatch> out;
    data::DatasetConfig dcfg;
    dcfg.sim_cycles = 200;
    for (const auto& s : data::corpus_specs(8, 55, 1, 2)) {
      out.push_back(core::build_batch(
          data::label_circuit(s, cell::standard_library(), dcfg), encoder(),
          cfg.features));
    }
    return out;
  }();
  return batches;
}

/// One pre-training epoch over 8 circuits, gradients accumulated over the
/// whole corpus (one optimizer step) — the circuit-level data parallelism
/// target. range(0) = worker threads.
void BM_PretrainEpoch(benchmark::State& state) {
  core::MossConfig cfg;
  std::vector<core::CircuitBatch>& data = pretrain_corpus(cfg);
  core::MossModel model(cfg, cell::standard_library(), encoder());
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.grad_accum = data.size();
  pcfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pretrain(model, data, pcfg));
  }
  state.SetLabel(std::to_string(pcfg.threads) + " threads");
}
BENCHMARK(BM_PretrainEpoch)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

clustering::Points bench_points(std::size_t n) {
  clustering::Points pts;
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<float>(rng.normal(i % 7, 0.4)),
                   static_cast<float>(rng.normal(i % 3, 0.4)),
                   static_cast<float>(rng.normal(0, 0.4))});
  }
  return pts;
}

void BM_Dbscan(benchmark::State& state) {
  const clustering::Points pts = bench_points(1200);
  clustering::DbscanConfig cfg;
  cfg.eps = 0.8;
  cfg.min_pts = 4;
  cfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::dbscan(pts, cfg));
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads");
}
BENCHMARK(BM_Dbscan)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_SuggestEps(benchmark::State& state) {
  const clustering::Points pts = bench_points(1200);
  const std::size_t threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::suggest_eps(pts, 0.25, threads));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_SuggestEps)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_BuildDataset(benchmark::State& state) {
  const auto specs = data::corpus_specs(8, 91, 1, 2);
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  cfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::build_dataset(specs, cell::standard_library(), cfg));
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads");
}
BENCHMARK(BM_BuildDataset)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --threads flag before google-benchmark parses the rest.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_threads == 0) g_threads = 1;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
