// Microbenchmarks of the substrate pipeline (google-benchmark): synthesis,
// gate-level simulation, STA, AIG conversion, LM encoding and GNN forward —
// the per-stage costs behind the experiment benches.

#include <benchmark/benchmark.h>

#include "baseline/deepseq.hpp"
#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

using namespace moss;

namespace {

const data::LabeledCircuit& labeled(int size) {
  static std::unordered_map<int, data::LabeledCircuit> cache;
  const auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  data::DesignSpec s{"alu", size, 77, "alu_bench" + std::to_string(size)};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  return cache.emplace(size, data::label_circuit(
                                 s, cell::standard_library(), cfg))
      .first->second;
}

lm::TextEncoder& encoder() {
  static lm::TextEncoder enc({4096, 24, 7});
  return enc;
}

void BM_Synthesize(benchmark::State& state) {
  data::DesignSpec s{"alu", static_cast<int>(state.range(0)), 77, "alu_s"};
  const rtl::Module m = data::generate(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::synthesize(m, cell::standard_library()));
  }
  state.SetLabel(std::to_string(
      synth::synthesize(m, cell::standard_library()).num_cells()) +
      " cells");
}
BENCHMARK(BM_Synthesize)->Arg(1)->Arg(3)->Arg(5);

void BM_SimulateCycle(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  moss::sim::Simulator simulator(lc.netlist);
  std::vector<std::uint8_t> pis(lc.netlist.inputs().size(), 0);
  Rng rng(1);
  for (auto _ : state) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    simulator.step(pis);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lc.netlist.num_cells()));
}
BENCHMARK(BM_SimulateCycle)->Arg(1)->Arg(3)->Arg(5);

void BM_Sta(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sta::TimingAnalysis ta(lc.netlist);
    benchmark::DoNotOptimize(ta.worst_arrival());
  }
}
BENCHMARK(BM_Sta)->Arg(1)->Arg(3)->Arg(5);

void BM_AigConversion(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::from_netlist(lc.netlist));
  }
}
BENCHMARK(BM_AigConversion)->Arg(1)->Arg(3)->Arg(5);

void BM_LmEncode(benchmark::State& state) {
  const auto& lc = labeled(2);
  for (auto _ : state) {
    encoder().invalidate_cache();  // measure the un-cached path
    benchmark::DoNotOptimize(encoder().encode(lc.module_text));
  }
}
BENCHMARK(BM_LmEncode);

void BM_BuildBatch(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::FeatureConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_batch(lc, encoder(), cfg));
  }
}
BENCHMARK(BM_BuildBatch)->Arg(1)->Arg(3);

void BM_GnnForward(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  const core::CircuitBatch batch =
      core::build_batch(lc, encoder(), cfg.features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.node_embeddings(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.graph.num_nodes));
}
BENCHMARK(BM_GnnForward)->Arg(1)->Arg(3);

void BM_TrainStep(benchmark::State& state) {
  const auto& lc = labeled(2);
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  std::vector<core::CircuitBatch> data{
      core::build_batch(lc, encoder(), cfg.features)};
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pretrain(model, data, pcfg));
  }
}
BENCHMARK(BM_TrainStep);

}  // namespace

BENCHMARK_MAIN();
