// Microbenchmarks of the substrate pipeline (google-benchmark): synthesis,
// gate-level simulation, STA, AIG conversion, LM encoding, GNN forward and
// the parallel execution layer — the per-stage costs behind the experiment
// benches.
//
// A hand-rolled kernel section runs first: blocked GEMM vs the pre-kernel
// naive matmul loop at the GNN/LM/serve shapes, fused vs composed ops, and a
// kernel thread sweep. Results go to stdout and results/bench_micro.json,
// and in Release builds the GEMM speedup at the model shapes is enforced as
// an acceptance floor (>= 3x) via the exit code (MOSS_BENCH_NO_FLOOR=1 to
// waive, e.g. on emulated or throttled machines).
//
// Flags (in addition to the usual google-benchmark flags):
//   --threads N      worker count of the *_Parallel variants
//   --kernels-only   run just the kernel section (CI smoke uses this)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/deepseq.hpp"
#include "clustering/clustering.hpp"
#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "json_report.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"
#include "tensor/kernels.hpp"

using namespace moss;

namespace {

std::size_t g_threads = 4;  // overridden by --threads N

/// Benchmarks registered with Arg(0) resolve the worker count from the
/// --threads flag at run time (registration happens before main() parses
/// flags, so the flag value cannot be baked into the Arg list).
std::size_t resolve_threads(std::int64_t arg) {
  return arg > 0 ? static_cast<std::size_t>(arg) : g_threads;
}

const data::LabeledCircuit& labeled(int size) {
  static std::unordered_map<int, data::LabeledCircuit> cache;
  const auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  data::DesignSpec s{"alu", size, 77, "alu_bench" + std::to_string(size)};
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  return cache.emplace(size, data::label_circuit(
                                 s, cell::standard_library(), cfg))
      .first->second;
}

lm::TextEncoder& encoder() {
  static lm::TextEncoder enc({4096, 24, 7});
  return enc;
}

void BM_Synthesize(benchmark::State& state) {
  data::DesignSpec s{"alu", static_cast<int>(state.range(0)), 77, "alu_s"};
  const rtl::Module m = data::generate(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::synthesize(m, cell::standard_library()));
  }
  state.SetLabel(std::to_string(
      synth::synthesize(m, cell::standard_library()).num_cells()) +
      " cells");
}
BENCHMARK(BM_Synthesize)->Arg(1)->Arg(3)->Arg(5);

void BM_SimulateCycle(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  moss::sim::Simulator simulator(lc.netlist);
  std::vector<std::uint8_t> pis(lc.netlist.inputs().size(), 0);
  Rng rng(1);
  for (auto _ : state) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    simulator.step(pis);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lc.netlist.num_cells()));
}
BENCHMARK(BM_SimulateCycle)->Arg(1)->Arg(3)->Arg(5);

void BM_Sta(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sta::TimingAnalysis ta(lc.netlist);
    benchmark::DoNotOptimize(ta.worst_arrival());
  }
}
BENCHMARK(BM_Sta)->Arg(1)->Arg(3)->Arg(5);

void BM_AigConversion(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::from_netlist(lc.netlist));
  }
}
BENCHMARK(BM_AigConversion)->Arg(1)->Arg(3)->Arg(5);

void BM_LmEncode(benchmark::State& state) {
  const auto& lc = labeled(2);
  for (auto _ : state) {
    encoder().invalidate_cache();  // measure the un-cached path
    benchmark::DoNotOptimize(encoder().encode(lc.module_text));
  }
}
BENCHMARK(BM_LmEncode);

void BM_BuildBatch(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::FeatureConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_batch(lc, encoder(), cfg));
  }
}
BENCHMARK(BM_BuildBatch)->Arg(1)->Arg(3);

void BM_GnnForward(benchmark::State& state) {
  const auto& lc = labeled(static_cast<int>(state.range(0)));
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  const core::CircuitBatch batch =
      core::build_batch(lc, encoder(), cfg.features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.node_embeddings(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.graph.num_nodes));
}
BENCHMARK(BM_GnnForward)->Arg(1)->Arg(3);

void BM_TrainStep(benchmark::State& state) {
  const auto& lc = labeled(2);
  core::MossConfig cfg;
  cfg.hidden = 32;
  cfg.rounds = 2;
  core::MossModel model(cfg, cell::standard_library(), encoder());
  std::vector<core::CircuitBatch> data{
      core::build_batch(lc, encoder(), cfg.features)};
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pretrain(model, data, pcfg));
  }
}
BENCHMARK(BM_TrainStep);

/// Blocked GEMM at the GNN hidden size, through the standard gbench
/// reporter (the hand-rolled kernel section is the source of truth for the
/// JSON trajectory; this entry makes the kernels filterable alongside the
/// rest of the microbenches). range(0) = M rows.
void BM_KernelGemm(benchmark::State& state) {
  const std::size_t M = static_cast<std::size_t>(state.range(0));
  const std::size_t K = 32, N = 32;
  Rng rng(5);
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.0f);
  for (float& v : A) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (float& v : B) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto _ : state) {
    tensor::kernels::gemm(M, K, N, A.data(), B.data(), C.data());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * M * K * N));
}
BENCHMARK(BM_KernelGemm)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// Parallel execution layer: serial vs --threads N on the same workload.
// ---------------------------------------------------------------------------

std::vector<core::CircuitBatch>& pretrain_corpus(core::MossConfig& cfg) {
  cfg.hidden = 32;
  cfg.rounds = 2;
  static std::vector<core::CircuitBatch> batches = [&] {
    std::vector<core::CircuitBatch> out;
    data::DatasetConfig dcfg;
    dcfg.sim_cycles = 200;
    for (const auto& s : data::corpus_specs(8, 55, 1, 2)) {
      out.push_back(core::build_batch(
          data::label_circuit(s, cell::standard_library(), dcfg), encoder(),
          cfg.features));
    }
    return out;
  }();
  return batches;
}

/// One pre-training epoch over 8 circuits, gradients accumulated over the
/// whole corpus (one optimizer step) — the circuit-level data parallelism
/// target. range(0) = worker threads.
void BM_PretrainEpoch(benchmark::State& state) {
  core::MossConfig cfg;
  std::vector<core::CircuitBatch>& data = pretrain_corpus(cfg);
  core::MossModel model(cfg, cell::standard_library(), encoder());
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.grad_accum = data.size();
  pcfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pretrain(model, data, pcfg));
  }
  state.SetLabel(std::to_string(pcfg.threads) + " threads");
}
BENCHMARK(BM_PretrainEpoch)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

clustering::Points bench_points(std::size_t n) {
  clustering::Points pts;
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<float>(rng.normal(i % 7, 0.4)),
                   static_cast<float>(rng.normal(i % 3, 0.4)),
                   static_cast<float>(rng.normal(0, 0.4))});
  }
  return pts;
}

void BM_Dbscan(benchmark::State& state) {
  const clustering::Points pts = bench_points(1200);
  clustering::DbscanConfig cfg;
  cfg.eps = 0.8;
  cfg.min_pts = 4;
  cfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::dbscan(pts, cfg));
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads");
}
BENCHMARK(BM_Dbscan)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_SuggestEps(benchmark::State& state) {
  const clustering::Points pts = bench_points(1200);
  const std::size_t threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::suggest_eps(pts, 0.25, threads));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_SuggestEps)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_BuildDataset(benchmark::State& state) {
  const auto specs = data::corpus_specs(8, 91, 1, 2);
  data::DatasetConfig cfg;
  cfg.sim_cycles = 200;
  cfg.threads = resolve_threads(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::build_dataset(specs, cell::standard_library(), cfg));
  }
  state.SetLabel(std::to_string(cfg.threads) + " threads");
}
BENCHMARK(BM_BuildDataset)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel layer: blocked GEMM vs the pre-kernel matmul loop.
// ---------------------------------------------------------------------------

/// The matmul forward loop as it was before the kernel layer (including its
/// `av == 0.0f` fast path) — the fixed baseline the 3x acceptance floor is
/// measured against, so the floor keeps meaning the same thing on every
/// commit after the original loop is gone.
void gemm_pre_kernel(std::size_t M, std::size_t K, std::size_t N,
                     const float* A, const float* B, float* C) {
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t k = 0; k < K; ++k) {
      const float av = A[m * K + k];
      if (av == 0.0f) continue;
      const float* brow = B + k * N;
      float* crow = C + m * N;
      for (std::size_t n = 0; n < N; ++n) crow[n] += av * brow[n];
    }
  }
}

std::vector<float> bench_randv(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

/// Best-of-`reps` nanoseconds per call, each rep running `fn` until
/// `min_ms` of wall clock has elapsed (google-benchmark's strategy, hand
/// rolled so the kernel section controls its own JSON output).
template <class F>
double best_ns_per_call(F&& fn, int reps, double min_ms) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    std::int64_t iters = 0;
    double ns = 0.0;
    do {
      fn();
      ++iters;
      ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
    } while (ns < min_ms * 1e6);
    const double per_call = ns / static_cast<double>(iters);
    if (r == 0 || per_call < best) best = per_call;
  }
  return best;
}

struct GemmShape {
  const char* name;
  std::size_t M, K, N;
  bool floor;  ///< participates in the 3x acceptance floor
};

/// Runs the kernel section. Returns false when the Release-mode speedup
/// floor is violated (and not waived).
bool run_kernel_benches(bench::JsonReport& report) {
  using namespace tensor;
  const char* scale_env = std::getenv("MOSS_BENCH_SCALE");
  const int scale = scale_env ? std::atoi(scale_env) : 1;
  const int reps = scale == 0 ? 3 : 5;
  const double min_ms = scale == 0 ? 2.0 : 25.0;

  // Shapes from the hot callers: per-edge messages and node updates at the
  // experiment hidden size (32), LM projection at encoder dim 24, and the
  // serve warm path's per-request update. `big` exists for the thread sweep.
  const GemmShape shapes[] = {
      {"gnn_msg_4096x32x32", 4096, 32, 32, true},
      {"gnn_update_1024x32x32", 1024, 32, 32, true},
      {"lm_proj_512x24x24", 512, 24, 24, true},
      {"serve_req_128x32x32", 128, 32, 32, false},
      {"big_2048x64x64", 2048, 64, 64, false},
  };

  std::printf("=== Kernel layer: blocked GEMM vs pre-kernel matmul loop ===\n\n");
  std::printf("%-24s %12s %12s %9s %8s\n", "shape", "naive ns", "kernel ns",
              "speedup", "GFLOP/s");
  Rng rng(0xBE7C);
  double floor_worst = 1e30;
  for (const GemmShape& s : shapes) {
    const auto A = bench_randv(s.M * s.K, rng);
    const auto B = bench_randv(s.K * s.N, rng);
    std::vector<float> C(s.M * s.N, 0.0f);
    const double naive_ns = best_ns_per_call(
        [&] { gemm_pre_kernel(s.M, s.K, s.N, A.data(), B.data(), C.data()); },
        reps, min_ms);
    const double kernel_ns = best_ns_per_call(
        [&] { kernels::gemm(s.M, s.K, s.N, A.data(), B.data(), C.data()); },
        reps, min_ms);
    const double speedup = naive_ns / kernel_ns;
    const double flops = 2.0 * static_cast<double>(s.M * s.K * s.N);
    const double gflops = flops / kernel_ns;
    if (s.floor && speedup < floor_worst) floor_worst = speedup;
    std::printf("%-24s %12.0f %12.0f %8.2fx %8.1f\n", s.name, naive_ns,
                kernel_ns, speedup, gflops);
    report.row("gemm", {{"shape", std::string(s.name)},
                        {"naive_ns", naive_ns},
                        {"kernel_ns", kernel_ns},
                        {"speedup", speedup},
                        {"gflops", gflops},
                        {"floor", s.floor}});
  }

  // Fused ops vs their composed tensor-graph equivalents (forward only,
  // requires_grad off — the serve warm path).
  std::printf("\n%-24s %12s %12s %9s\n", "fused op", "composed ns",
              "fused ns", "speedup");
  {
    Rng r(0xF05E);
    Tensor x = Tensor::randn(1024, 32, r, 1.0f, false);
    Tensor w = Tensor::randn(32, 32, r, 1.0f, false);
    Tensor ad = Tensor::randn(1024, 32, r, 1.0f, false);
    Tensor b = Tensor::randn(1, 32, r, 1.0f, false);
    const double composed_ns = best_ns_per_call(
        [&] { tanh_t(add(add(matmul(x, w), ad), b)); }, reps, min_ms);
    const double fused_ns = best_ns_per_call(
        [&] { kernels::matmul_bias_tanh(x, w, ad, b); }, reps, min_ms);
    std::printf("%-24s %12.0f %12.0f %8.2fx\n", "matmul_bias_tanh",
                composed_ns, fused_ns, composed_ns / fused_ns);
    report.row("fused", {{"op", std::string("matmul_bias_tanh")},
                         {"composed_ns", composed_ns},
                         {"fused_ns", fused_ns},
                         {"speedup", composed_ns / fused_ns}});

    std::vector<int> idx(4096);
    Rng ir(3);
    for (int& i : idx) i = static_cast<int>(ir.index(1024));
    const double g_composed_ns = best_ns_per_call(
        [&] { matmul(gather_rows(x, idx), w); }, reps, min_ms);
    const double g_fused_ns = best_ns_per_call(
        [&] { kernels::gather_matmul(x, idx, w); }, reps, min_ms);
    std::printf("%-24s %12.0f %12.0f %8.2fx\n", "gather_matmul",
                g_composed_ns, g_fused_ns, g_composed_ns / g_fused_ns);
    report.row("fused", {{"op", std::string("gather_matmul")},
                         {"composed_ns", g_composed_ns},
                         {"fused_ns", g_fused_ns},
                         {"speedup", g_composed_ns / g_fused_ns}});
  }

  // Kernel thread sweep on the big shape (row-partitioned; bit-identical at
  // every count — the tests assert that, this records the wall clock).
  std::printf("\n%-24s %12s %9s\n", "gemm 2048x64x64", "ns/call",
              "vs 1 thr");
  {
    const GemmShape& s = shapes[4];
    const auto A = bench_randv(s.M * s.K, rng);
    const auto B = bench_randv(s.K * s.N, rng);
    std::vector<float> C(s.M * s.N, 0.0f);
    double t1 = 0.0;
    for (const std::size_t t : {1u, 2u, 4u}) {
      kernels::set_threads(t);
      const double ns = best_ns_per_call(
          [&] { kernels::gemm(s.M, s.K, s.N, A.data(), B.data(), C.data()); },
          reps, min_ms);
      if (t == 1) t1 = ns;
      std::printf("%-24zu %12.0f %8.2fx\n", t, ns, t1 / ns);
      report.row("threads", {{"threads", static_cast<std::int64_t>(t)},
                             {"ns_per_call", ns},
                             {"speedup_vs_1", t1 / ns}});
    }
    kernels::set_threads(1);
  }

#ifdef NDEBUG
  const bool enforce = std::getenv("MOSS_BENCH_NO_FLOOR") == nullptr;
#else
  const bool enforce = false;  // unoptimized builds measure nothing useful
#endif
  const bool floor_ok = floor_worst >= 3.0;
  report.metric("gemm_floor_speedup", floor_worst);
  report.metric("gemm_floor_ok", floor_ok);
  report.metric("gemm_floor_enforced", enforce);
  std::printf("\nworst model-shape GEMM speedup: %.2fx (acceptance floor: "
              "3x, %s)\n\n",
              floor_worst, enforce ? "enforced" : "not enforced");
  return floor_ok || !enforce;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark parses the rest.
  bool kernels_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--kernels-only") == 0) {
      kernels_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_threads == 0) g_threads = 1;

  bench::JsonReport report("bench_micro");
  const bool kernels_ok = run_kernel_benches(report);
  report.write();
  if (kernels_only) return kernels_ok ? 0 : 1;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return kernels_ok ? 0 : 1;
}
