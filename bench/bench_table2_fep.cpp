// Reproduces Table II: RTL-netlist functional-equivalence prediction (FEP)
// accuracy on several circuit pools, for the four MOSS variants.
//
// Paper reference (DAC'25 Table II, averages over 6 pools):
//   MOSS w/o FAA 8.5   MOSS w/o AA 19.9   MOSS w/o A 26.6   MOSS 93.7
//
// Each pool stands in for one "circuit source" (github_*/huggingface_* in
// the paper): a set of aligned RTL/netlist pairs; accuracy is the rate at
// which the true netlist is ranked first for its RTL among all candidates
// in the pool.

#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;
using bench::Workbench;

namespace {

/// Build one evaluation pool: every design family once, at the given size,
/// with pool-specific seeds (disjoint from training seeds).
std::vector<data::LabeledCircuit> make_pool(int pool_index,
                                            const Scale& scale) {
  const auto fams = data::families();
  std::vector<data::DesignSpec> specs;
  Rng rng(0x9000 + static_cast<std::uint64_t>(pool_index) * 131);
  for (std::size_t f = 0; f < fams.size(); ++f) {
    data::DesignSpec s;
    s.family = fams[f];
    s.size_hint = 1 + static_cast<int>(rng.uniform_int(0, 2));
    s.seed = 0x5000 + rng();
    s.name = fams[f] + "_p" + std::to_string(pool_index);
    specs.push_back(std::move(s));
  }
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = scale.sim_cycles / 2;
  return data::build_dataset(specs, cell::standard_library(), dcfg);
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("=== Table II: RTL-netlist functional equivalence prediction "
              "===\n\n");
  const Workbench wb = Workbench::make(scale);

  struct Variant {
    const char* name;
    core::MossConfig cfg;
  };
  const std::vector<Variant> variants{
      {"MOSS w/o FAA", core::MossConfig::without_features()},
      {"MOSS w/o AA", core::MossConfig::without_adaptive_agg()},
      {"MOSS w/o A", core::MossConfig::without_alignment()},
      {"MOSS", core::MossConfig::full()},
  };

  constexpr int kPools = 6;
  std::vector<std::vector<data::LabeledCircuit>> pools;
  for (int p = 0; p < kPools; ++p) pools.push_back(make_pool(p, scale));

  std::printf("%-14s |", "Pool");
  for (const auto& v : variants) std::printf(" %-13s |", v.name);
  std::printf("\n");
  bench::print_rule(16 + 16 * static_cast<int>(variants.size()));

  std::vector<std::vector<double>> acc(
      variants.size(), std::vector<double>(kPools, 0.0));
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const bench::TrainedMoss tm = bench::train_moss(wb, variants[vi].cfg);
    for (int p = 0; p < kPools; ++p) {
      std::vector<core::CircuitBatch> batches;
      for (const auto& lc : pools[static_cast<std::size_t>(p)]) {
        batches.push_back(core::build_batch(lc, wb.encoder,
                                            variants[vi].cfg.features));
      }
      acc[vi][static_cast<std::size_t>(p)] =
          core::evaluate_fep(tm.model, batches);
    }
    std::fprintf(stderr, "[trained %s]\n", variants[vi].name);
  }

  const char* pool_names[kPools] = {"github_0",      "github_1",
                                    "github_2",      "huggingface_0",
                                    "huggingface_1", "huggingface_2"};
  std::vector<double> avg(variants.size(), 0.0);
  for (int p = 0; p < kPools; ++p) {
    std::printf("%-14s |", pool_names[p]);
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      std::printf("     %5.1f     |", 100 * acc[vi][static_cast<std::size_t>(p)]);
      avg[vi] += acc[vi][static_cast<std::size_t>(p)];
    }
    std::printf("\n");
  }
  bench::print_rule(16 + 16 * static_cast<int>(variants.size()));
  std::printf("%-14s |", "Average");
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    std::printf("     %5.1f     |", 100 * avg[vi] / kPools);
  }
  std::printf("\n\nPaper averages: w/o FAA 8.5 | w/o AA 19.9 | w/o A 26.6 | "
              "MOSS 93.7\n");

  bench::JsonReport report("bench_table2_fep");
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    for (int p = 0; p < kPools; ++p) {
      report.row("pools",
                 {{"variant", std::string(variants[vi].name)},
                  {"pool", std::string(pool_names[p])},
                  {"fep_acc", 100 * acc[vi][static_cast<std::size_t>(p)]}});
    }
    report.row("averages", {{"variant", std::string(variants[vi].name)},
                            {"fep_acc", 100 * avg[vi] / kPools}});
  }
  report.write();
  return 0;
}
