// Flat-plan execution vs pointer-walk traversal: cold FEP-rank throughput
// with hash-consed cone reuse, and plan-blob load vs full batch rebuild.
//
// The headline row is cold FEP-rank: one rank query embeds every pool
// member. The pointer-walk baseline re-propagates every member's graph per
// query (the pre-plan cold path of bench_serve); the plan path runs the
// same schedule through plan::hashcons_node_embeddings with a persistent
// cone table, so subcircuits shared across members and across queries are
// copied from the cache instead of re-propagated — bit-identically, which
// this bench re-asserts before timing anything.
//
// Acceptance floor (enforced, non-zero exit): plan-path cold FEP-rank QPS
// >= 2x the pointer-walk baseline.
//
// Output: stdout table + results/bench_plan.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "plan/plan.hpp"
#include "serve/cache.hpp"

using namespace moss;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// plan::ConeRowCache over the real serve EmbeddingCache (the same adapter
/// shape the inference engine uses), so the bench pays genuine cache policy
/// costs — sharded locks, LRU bookkeeping, byte budget — not map lookups.
class ConeCache : public plan::ConeRowCache {
 public:
  explicit ConeCache(serve::EmbeddingCache& c) : cache_(c) {}
  std::optional<tensor::Tensor> get(std::uint64_t cone_hash) override {
    return cache_.get(serve::cone_key(kUid, cone_hash));
  }
  void put(std::uint64_t cone_hash, const tensor::Tensor& row) override {
    cache_.put(serve::cone_key(kUid, cone_hash), row);
  }

 private:
  static constexpr std::uint64_t kUid = 1;
  serve::EmbeddingCache& cache_;
};

double dot(const tensor::Tensor& a, const tensor::Tensor& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a.data()[i]) * static_cast<double>(b.data()[i]);
  }
  return s;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const bool smoke = scale.sim_cycles < 1000;
  const std::size_t kPool = smoke ? 12 : 32;
  const int kQueries = smoke ? 4 : 8;

  std::printf("=== Flat plan vs pointer walk: cold FEP-rank + blob I/O ===\n\n");

  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = smoke ? 150 : 400;
  dcfg.threads = scale.threads;

  const auto fams = data::families();
  std::vector<data::DesignSpec> specs;
  for (std::size_t i = 0; i < kPool; ++i) {
    data::DesignSpec s;
    s.family = fams[i % fams.size()];
    s.size_hint = 1 + static_cast<int>(i / fams.size()) % 2;
    s.seed = 0xCAFE + i;
    s.name = s.family + "_pln" + std::to_string(i);
    specs.push_back(std::move(s));
  }
  std::fprintf(stderr, "[labeling %zu circuits]\n", kPool);
  const auto lcs = data::build_dataset(specs, lib, dcfg);

  const lm::TextEncoder enc({2048, 16, 9});
  std::vector<core::CircuitBatch> batches;
  std::vector<plan::ExecutionPlan> plans;
  for (const auto& lc : lcs) {
    batches.push_back(core::build_batch(lc, enc, {}));
    plans.push_back(plan::compile(lc.netlist, batches.back()));
  }

  gnn::GnnConfig gc;
  gc.feature_dim = batches[0].graph.features.cols();
  gc.hidden = scale.hidden;
  gc.num_aggregators = batches[0].graph.num_clusters;
  gc.rounds = 1;  // the cone-reuse regime (serving config)
  Rng rng(0x9A7);
  tensor::ParameterSet params;
  const gnn::TwoPhaseGnn gnn(gc, rng, params);

  // Bit-identity gate: never time a path that is not exact.
  serve::EmbeddingCache cone_store(256u << 20);
  {
    ConeCache cones(cone_store);
    for (std::size_t i = 0; i < kPool; ++i) {
      const tensor::Tensor ref = gnn.run(batches[i].graph);
      const tensor::Tensor got =
          plan::hashcons_node_embeddings(gnn, plans[i], batches[i], cones);
      if (ref.rows() != got.rows() || ref.cols() != got.cols() ||
          std::memcmp(ref.data().data(), got.data().data(),
                      ref.size() * sizeof(float)) != 0) {
        std::fprintf(stderr, "FAIL: plan path diverged on %s\n",
                     batches[i].name.c_str());
        return 2;
      }
    }
    cone_store.clear();  // timed runs start genuinely cold
  }
  std::printf("bit-identity: plan path == pointer walk on all %zu members\n\n",
              kPool);

  const tensor::Tensor query = gnn.readout(batches[0].graph,
                                           gnn.run(batches[0].graph));

  // --- cold FEP-rank: every query embeds every member ---------------------
  double base_s = 0.0;
  {
    const auto t0 = Clock::now();
    double sink = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      for (std::size_t i = 0; i < kPool; ++i) {
        const tensor::Tensor h = gnn.run(batches[i].graph);
        sink += dot(gnn.readout(batches[i].graph, h), query);
      }
    }
    base_s = seconds_since(t0);
    if (sink == 42.0) std::printf(" ");  // keep the loop observable
  }

  double plan_s = 0.0;
  plan::ConeStats stats;  // accumulated over every call
  {
    ConeCache cones(cone_store);
    const auto t0 = Clock::now();
    double sink = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      for (std::size_t i = 0; i < kPool; ++i) {
        plan::ConeStats st;
        const tensor::Tensor h = plan::hashcons_node_embeddings(
            gnn, plans[i], batches[i], cones, &st);
        stats.scheduled += st.scheduled;
        stats.reused += st.reused;
        stats.computed += st.computed;
        sink += dot(gnn.readout(batches[i].graph, h), query);
      }
    }
    plan_s = seconds_since(t0);
    if (sink == 42.0) std::printf(" ");
  }

  const double base_qps = kQueries / base_s;
  const double plan_qps = kQueries / plan_s;
  const double speedup = plan_qps / base_qps;
  const double reuse =
      stats.scheduled == 0
          ? 0.0
          : static_cast<double>(stats.reused) / static_cast<double>(stats.scheduled);

  std::printf("%-14s | %12s | %12s | %8s\n", "endpoint", "pointer qps",
              "plan qps", "speedup");
  bench::print_rule(56);
  std::printf("%-14s | %12.1f | %12.1f | %7.1fx\n", "fep_rank_cold",
              base_qps, plan_qps, speedup);
  bench::print_rule(56);
  std::printf("cone reuse: %zu/%zu scheduled rows served from cache (%.0f%%)\n",
              stats.reused, stats.scheduled, 100.0 * reuse);

  // --- blob I/O: load vs full rebuild -------------------------------------
  std::size_t blob_bytes = 0;
  std::vector<std::string> blobs;
  for (const auto& p : plans) {
    blobs.push_back(plan::serialize(p));
    blob_bytes += blobs.back().size();
  }
  double load_s = 0.0;
  {
    const auto t0 = Clock::now();
    for (const auto& blob : blobs) {
      const plan::ExecutionPlan p = plan::deserialize(blob, ErrorContext{});
      if (p.num_nodes() == 0) return 2;
    }
    load_s = seconds_since(t0);
  }
  double rebuild_s = 0.0;
  {
    const auto t0 = Clock::now();
    for (const auto& lc : lcs) {
      const core::CircuitBatch b = core::build_batch(lc, enc, {});
      if (b.graph.num_nodes == 0) return 2;
    }
    rebuild_s = seconds_since(t0);
  }
  std::printf("\nblob i/o: %zu plans, %.1f KB total | load %.1f ms | "
              "build_batch %.1f ms (%.1fx)\n",
              kPool, static_cast<double>(blob_bytes) / 1024.0, load_s * 1e3,
              rebuild_s * 1e3, rebuild_s / load_s);

  bench::JsonReport report("bench_plan");
  report.metric("pool", static_cast<std::int64_t>(kPool));
  report.metric("queries", static_cast<std::int64_t>(kQueries));
  report.metric("fep_rank_cold_pointer_qps", base_qps);
  report.metric("fep_rank_cold_plan_qps", plan_qps);
  report.metric("fep_rank_cold_speedup", speedup);
  report.metric("cone_reuse_fraction", reuse);
  report.metric("blob_bytes", static_cast<std::int64_t>(blob_bytes));
  report.metric("blob_load_s", load_s);
  report.metric("batch_rebuild_s", rebuild_s);
  report.metric("floor_speedup", 2.0);
  const bool pass = speedup >= 2.0;
  report.metric("pass", pass);
  if (!report.write()) {
    std::fprintf(stderr, "warning: could not write results/bench_plan.json\n");
  }

  std::printf("\nfep_rank cold plan/pointer speedup: %.1fx "
              "(acceptance floor: 2x) -> %s\n",
              speedup, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
