#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace moss::bench {

/// Machine-readable companion to the benches' stdout tables. Each bench
/// builds one JsonReport and writes it to results/<name>.json so perf can be
/// tracked as a trajectory across commits instead of eyeballing text diffs.
///
/// Keys are part of the schema: once a bench ships a metric or table column,
/// later commits keep the name so downstream tooling can diff runs. Numbers
/// are serialized with enough digits (%.17g) to round-trip exactly.
class JsonReport {
 public:
  using Value = std::variant<double, std::int64_t, bool, std::string>;

  /// `name` is the output basename, conventionally the bench executable
  /// name ("bench_micro" -> results/bench_micro.json).
  explicit JsonReport(std::string name);

  /// Top-level scalar (qps, speedup, pass/fail, config echo, ...).
  void metric(const std::string& key, Value v);

  /// Append one row to a named table. Rows of one table should share the
  /// same columns; column order follows the first insertion.
  void row(const std::string& table,
           std::vector<std::pair<std::string, Value>> cells);

  /// Serialize to `dir`/<name>.json (creating `dir` if needed). Adds the
  /// bench name, a schema_version, and wall_clock_s (seconds since this
  /// report was constructed) automatically. Returns false on I/O failure —
  /// benches warn but do not fail the run on that.
  bool write(const std::string& dir = "results") const;

  /// The serialized document (exposed for tests and for benches that want
  /// to echo it to stdout).
  std::string to_json() const;

 private:
  std::string name_;
  std::int64_t start_ns_;
  std::vector<std::pair<std::string, Value>> metrics_;
  std::vector<std::string> table_order_;
  std::map<std::string, std::vector<std::vector<std::pair<std::string, Value>>>>
      tables_;
};

}  // namespace moss::bench
