// Reproduces Fig. 1(a): prediction error of a DeepSeq2-style GNN grows with
// circuit size. The paper plots the toggle-rate and arrival-time error
// ratios (mean per-node |pred-true|/true) against gate count, with errors
// exceeding ~40% around 2,000 gates.
//
// Setup: the baseline is trained on small circuits only (the regime such
// models are trained in) and evaluated on circuits of increasing size.

#include <algorithm>
#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;

int main() {
  Scale scale = Scale::from_env();
  scale.max_train_size = 2;  // train on small circuits only
  std::printf("=== Fig. 1(a): baseline error ratio vs circuit size ===\n\n");
  const bench::Workbench wb = bench::Workbench::make(scale);
  const bench::TrainedBaseline tb = bench::train_baseline(wb);

  // Evaluation sweep: each family at growing sizes.
  struct Bucket {
    std::size_t cells;
    double toggle_err;
    double at_err;
  };
  std::vector<Bucket> buckets;
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = scale.sim_cycles;
  Rng rng(0xF19);
  for (int size = 1; size <= 6; ++size) {
    double tog = 0, at = 0;
    std::size_t cells = 0;
    int count = 0;
    for (const auto& fam : {"alu", "signed_mac", "wb_data_mux",
                            "pipeline_reg", "mult", "prbs_generator"}) {
      data::DesignSpec s{fam, size, 0xE00 + static_cast<std::uint64_t>(size),
                         std::string(fam) + "_f1s" + std::to_string(size)};
      const auto lc = data::label_circuit(s, cell::standard_library(), dcfg);
      const auto ab = baseline::build_aig_batch(lc, 1, scale.sim_cycles);
      const auto acc = baseline::evaluate_baseline(tb.model, ab, lc);
      tog += 1.0 - acc.trp;  // error ratio = 1 - accuracy
      at += 1.0 - acc.atp;
      cells += lc.netlist.num_cells();
      ++count;
    }
    buckets.push_back(Bucket{cells / static_cast<std::size_t>(count),
                             tog / count, at / count});
  }

  bench::JsonReport report("bench_fig1_scaling");
  std::printf("%-12s %-14s %-14s\n", "avg #cells", "toggle err %",
              "arrival err %");
  bench::print_rule(42);
  for (const auto& b : buckets) {
    std::printf("%-12zu %-14.1f %-14.1f\n", b.cells, 100 * b.toggle_err,
                100 * b.at_err);
    report.row("buckets",
               {{"avg_cells", static_cast<std::int64_t>(b.cells)},
                {"toggle_err_pct", 100 * b.toggle_err},
                {"arrival_err_pct", 100 * b.at_err}});
  }
  std::printf("\nPaper shape: both error ratios rise with size; >40%% near "
              "2,000 gates.\n");

  const bool rises = buckets.back().at_err > buckets.front().at_err;
  std::printf("arrival error rises with size: %s\n", rises ? "yes" : "NO");
  report.metric("arrival_err_rises", rises);
  report.write();
  return 0;
}
