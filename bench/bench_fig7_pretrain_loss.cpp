// Reproduces Fig. 7: losses during the pre-training phase — total,
// probability, toggle and arrival-time — all decreasing steadily.

#include <cstdio>

#include "harness.hpp"
#include "json_report.hpp"

using namespace moss;
using bench::Scale;

int main() {
  Scale scale = Scale::from_env();
  scale.pretrain_epochs = std::max(scale.pretrain_epochs, 45);  // paper: 45
  std::printf("=== Fig. 7: pre-training losses (45 epochs) ===\n\n");
  const bench::Workbench wb = bench::Workbench::make(scale);
  core::MossConfig cfg = core::MossConfig::without_alignment();
  cfg.hidden = scale.hidden;
  cfg.rounds = scale.rounds;
  core::MossModel model(cfg, cell::standard_library(), wb.encoder);
  std::vector<core::CircuitBatch> batches;
  for (const auto& lc : wb.train) {
    batches.push_back(core::build_batch(lc, wb.encoder, cfg.features));
  }
  core::PretrainConfig pcfg;
  pcfg.epochs = scale.pretrain_epochs;
  pcfg.lr = scale.lr;
  const core::PretrainReport rep = core::pretrain(model, batches, pcfg);

  const auto print_curve = [](const char* name,
                              const std::vector<double>& v) {
    std::printf("%-22s %s  (%.4f -> %.4f)\n", name,
                bench::sparkline(v).c_str(), v.front(), v.back());
  };
  print_curve("(a) total loss", rep.total);
  print_curve("(b) probability loss", rep.prob);
  print_curve("(c) toggle loss", rep.toggle);
  print_curve("(d) arrival-time loss", rep.arrival);

  std::printf("\nepoch  total     prob      toggle    arrival\n");
  bench::print_rule(46);
  for (std::size_t e = 0; e < rep.total.size();
       e += std::max<std::size_t>(1, rep.total.size() / 15)) {
    std::printf("%5zu  %.6f  %.6f  %.6f  %.6f\n", e, rep.total[e],
                rep.prob[e], rep.toggle[e], rep.arrival[e]);
  }
  std::printf("%5zu  %.6f  %.6f  %.6f  %.6f\n", rep.total.size() - 1,
              rep.total.back(), rep.prob.back(), rep.toggle.back(),
              rep.arrival.back());

  const bool all_drop = rep.total.back() < rep.total.front() &&
                        rep.prob.back() < rep.prob.front() &&
                        rep.toggle.back() < rep.toggle.front() &&
                        rep.arrival.back() < rep.arrival.front();
  std::printf("\nall loss components decrease (paper shape): %s\n",
              all_drop ? "yes" : "NO");

  bench::JsonReport report("bench_fig7_pretrain_loss");
  for (std::size_t e = 0; e < rep.total.size(); ++e) {
    report.row("epochs", {{"epoch", static_cast<std::int64_t>(e)},
                          {"total", rep.total[e]},
                          {"prob", rep.prob[e]},
                          {"toggle", rep.toggle[e]},
                          {"arrival", rep.arrival[e]}});
  }
  report.metric("all_losses_decrease", all_drop);
  report.write();
  return 0;
}
