// SAT oracle economics: what the miter-based equivalence oracle costs per
// proof, with floors.
//
// 1. Variant proofs. Every design family is synthesized twice (default
//    options vs. gate-tree merging and inverter fusion disabled) and the
//    oracle must prove the pair EQUIVALENT. These are UNSAT instances —
//    the expensive direction — and most settle on the combinational cut.
//
// 2. Mutant refutations. Seeded single-site mutations of each golden
//    netlist are checked; the oracle proves them NOT_EQUIVALENT with an
//    aig_sim-confirmed counterexample (or, rarely, EQUIVALENT when the
//    mutation lands on a don't-care). These are the instances hard-negative
//    mining feeds on, so their throughput bounds mining throughput.
//
// 3. Mining yield. mine_hard_negatives over one family with a
//    scores-everything-equivalent head stub: every proven-inequivalent
//    candidate must be kept, the run must be deterministic (two runs,
//    identical negatives), and the yield floor is >= 1 mined negative.
//
// Floors (enforced at every MOSS_BENCH_SCALE, exit 1 when missed):
//   - variant proofs  >= 2/s   (observed ~600/s on one core)
//   - mutant proofs   >= 5/s   (observed ~1900/s on one core)
//   - mined negatives >= 1, byte-deterministic across two runs
//
// Output: stdout tables + results/bench_sat.json. MOSS_BENCH_SCALE=0
// shrinks the family/mutant counts (CI smoke); 2 widens them.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/mutate.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "sat/mine.hpp"
#include "sat/oracle.hpp"
#include "synth/synthesize.hpp"

using namespace moss;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int scale_from_env() {
  const char* env = std::getenv("MOSS_BENCH_SCALE");
  return env != nullptr ? std::atoi(env) : 1;
}

}  // namespace

int main() {
  const int scale = scale_from_env();
  const std::size_t family_cap = scale == 0 ? 4 : data::families().size();
  const std::size_t mutants_per_family = scale == 0 ? 2 : scale == 1 ? 6 : 12;
  const int size_hint = scale >= 2 ? 2 : 1;
  const auto& lib = cell::standard_library();

  bench::JsonReport report("bench_sat");
  report.metric("scale", static_cast<std::int64_t>(scale));

  // ---- build golden + variant netlists per family ------------------------
  struct FamilyPair {
    std::string family;
    netlist::Netlist golden;
    netlist::Netlist variant;
  };
  std::vector<FamilyPair> pairs;
  for (const auto& fam : data::families()) {
    if (pairs.size() >= family_cap) break;
    data::DesignSpec spec{fam, size_hint, 7, fam + "_bench"};
    const rtl::Module m = data::generate(spec);
    synth::SynthOptions variant_opts;
    variant_opts.merge_gate_trees = false;
    variant_opts.fuse_inverters = false;
    variant_opts.name_suffix = "_variant";
    pairs.push_back({fam, synth::synthesize(m, lib),
                     synth::synthesize(m, lib, variant_opts)});
  }

  // ---- 1. variant proofs (UNSAT direction) -------------------------------
  const sat::EquivOracle oracle;
  std::printf("%-16s %-16s %10s %8s %6s\n", "family", "verdict", "conflicts",
              "cut", "ms");
  bench::print_rule(5);
  std::size_t variant_equivalent = 0;
  std::uint64_t variant_conflicts = 0;
  const auto t_variant = Clock::now();
  for (const auto& p : pairs) {
    const auto t0 = Clock::now();
    const sat::OracleResult res = oracle.check(p.golden, p.variant);
    const double ms = seconds_since(t0) * 1e3;
    if (res.verdict == sat::Verdict::kEquivalent) ++variant_equivalent;
    variant_conflicts += res.stats.conflicts;
    std::printf("%-16s %-16s %10llu %8s %6.1f\n", p.family.c_str(),
                sat::to_string(res.verdict),
                static_cast<unsigned long long>(res.stats.conflicts),
                res.proven_by_cut ? "yes" : "no", ms);
    report.row("variant_proofs",
               {{"family", p.family},
                {"verdict", std::string(sat::to_string(res.verdict))},
                {"conflicts", static_cast<std::int64_t>(res.stats.conflicts)},
                {"proven_by_cut", res.proven_by_cut},
                {"ms", ms}});
  }
  const double variant_s = seconds_since(t_variant);
  const double variant_qps = static_cast<double>(pairs.size()) / variant_s;
  const bool variant_all_ok = variant_equivalent == pairs.size();
  std::printf("variant proofs: %zu/%zu equivalent, %.1f proofs/s "
              "(%llu conflicts total)\n\n",
              variant_equivalent, pairs.size(), variant_qps,
              static_cast<unsigned long long>(variant_conflicts));

  // ---- 2. mutant refutations (SAT direction + BMC) -----------------------
  std::size_t mutant_checks = 0, mutant_neq = 0, mutant_eq = 0,
              mutant_unknown = 0, cex_confirmed = 0;
  const auto t_mutant = Clock::now();
  for (const auto& p : pairs) {
    Rng rng(13);
    const auto muts =
        data::sample_mutations(p.golden, mutants_per_family, rng);
    for (const auto& mut : muts) {
      const netlist::Netlist bad = data::apply_mutation(p.golden, mut, "_m");
      const sat::OracleResult res = oracle.check(p.golden, bad);
      ++mutant_checks;
      switch (res.verdict) {
        case sat::Verdict::kNotEquivalent:
          ++mutant_neq;
          if (res.cex.confirmed) ++cex_confirmed;
          break;
        case sat::Verdict::kEquivalent: ++mutant_eq; break;
        case sat::Verdict::kUnknown: ++mutant_unknown; break;
      }
    }
  }
  const double mutant_s = seconds_since(t_mutant);
  const double mutant_qps = static_cast<double>(mutant_checks) / mutant_s;
  // Every NOT_EQUIVALENT verdict must carry a replay-confirmed cex.
  const bool cex_all_confirmed = cex_confirmed == mutant_neq;
  std::printf("mutant proofs: %zu checks, %zu inequivalent (%zu cex "
              "confirmed), %zu equivalent, %zu unknown, %.1f proofs/s\n\n",
              mutant_checks, mutant_neq, cex_confirmed, mutant_eq,
              mutant_unknown, mutant_qps);

  // ---- 3. mining yield + determinism -------------------------------------
  sat::MinerConfig mcfg;
  mcfg.seed = 9;
  mcfg.candidates = scale == 0 ? 4 : 12;
  const auto fooled_head = [](const netlist::Netlist&) { return 1.0f; };
  const auto t_mine = Clock::now();
  const sat::MineReport mine_a =
      sat::mine_hard_negatives(pairs.front().golden, fooled_head, mcfg);
  const double mine_s = seconds_since(t_mine);
  const sat::MineReport mine_b =
      sat::mine_hard_negatives(pairs.front().golden, fooled_head, mcfg);
  bool mine_deterministic = mine_a.negatives.size() == mine_b.negatives.size();
  for (std::size_t i = 0; mine_deterministic && i < mine_a.negatives.size();
       ++i) {
    mine_deterministic = mine_a.negatives[i].name == mine_b.negatives[i].name &&
                         mine_a.negatives[i].verilog ==
                             mine_b.negatives[i].verilog &&
                         mine_a.negatives[i].conflicts ==
                             mine_b.negatives[i].conflicts;
  }
  std::printf("mining (%s, %zu candidates): %zu negatives in %.2fs, "
              "deterministic=%s\n\n",
              pairs.front().family.c_str(), mcfg.candidates,
              mine_a.negatives.size(), mine_s,
              mine_deterministic ? "yes" : "no");

  // ---- floors -------------------------------------------------------------
  const double variant_floor = 2.0, mutant_floor = 5.0;
  const bool variant_floor_ok = variant_qps >= variant_floor;
  const bool mutant_floor_ok = mutant_qps >= mutant_floor;
  const bool mine_floor_ok = !mine_a.negatives.empty() && mine_deterministic;
  const bool ok = variant_all_ok && cex_all_confirmed && variant_floor_ok &&
                  mutant_floor_ok && mine_floor_ok;

  report.metric("families", static_cast<std::int64_t>(pairs.size()));
  report.metric("variant_all_equivalent", variant_all_ok);
  report.metric("variant_proofs_per_s", variant_qps);
  report.metric("variant_conflicts",
                static_cast<std::int64_t>(variant_conflicts));
  report.metric("mutant_checks", static_cast<std::int64_t>(mutant_checks));
  report.metric("mutant_proven_inequivalent",
                static_cast<std::int64_t>(mutant_neq));
  report.metric("mutant_cex_confirmed",
                static_cast<std::int64_t>(cex_confirmed));
  report.metric("mutant_proven_equivalent",
                static_cast<std::int64_t>(mutant_eq));
  report.metric("mutant_unknown", static_cast<std::int64_t>(mutant_unknown));
  report.metric("mutant_proofs_per_s", mutant_qps);
  report.metric("mined_negatives",
                static_cast<std::int64_t>(mine_a.negatives.size()));
  report.metric("mine_deterministic", mine_deterministic);
  report.metric("variant_floor_ok", variant_floor_ok);
  report.metric("mutant_floor_ok", mutant_floor_ok);
  report.metric("mine_floor_ok", mine_floor_ok);
  report.metric("pass", ok);
  if (!report.write()) std::fprintf(stderr, "warning: json write failed\n");

  std::printf("floors: variant %.1f/s (>= %.1f) %s | mutant %.1f/s (>= %.1f) "
              "%s | mined %zu (>= 1, deterministic) %s\n",
              variant_qps, variant_floor, variant_floor_ok ? "ok" : "MISS",
              mutant_qps, mutant_floor, mutant_floor_ok ? "ok" : "MISS",
              mine_a.negatives.size(), mine_floor_ok ? "ok" : "MISS");
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
