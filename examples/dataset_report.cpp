// Dataset report: build a labeled corpus, print its statistics and a
// train/test split — the sanity pass run before any training experiment.
//
// Usage: ./build/examples/dataset_report [count] [max_size]

#include <cstdio>
#include <cstdlib>

#include "data/stats.hpp"

using namespace moss;

int main(int argc, char** argv) {
  const std::size_t count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  const int max_size = argc > 2 ? std::atoi(argv[2]) : 3;

  data::DatasetConfig cfg;
  cfg.sim_cycles = 800;
  std::printf("Building %zu circuits (sizes 1..%d, %llu sim cycles "
              "each)...\n\n",
              count, max_size,
              static_cast<unsigned long long>(cfg.sim_cycles));
  const auto ds = data::build_dataset(
      data::corpus_specs(count, 2024, 1, max_size),
      cell::standard_library(), cfg);

  const auto stats = data::compute_stats(ds);
  std::fputs(data::to_string(stats).c_str(), stdout);

  const auto split = data::split_dataset(ds, 0.25, 7);
  std::printf("\nsplit (25%% test, hash-stable): %zu train / %zu test\n",
              split.train.size(), split.test.size());
  std::printf("test circuits:");
  for (const auto* lc : split.test) {
    std::printf(" %s", lc->netlist.name().c_str());
  }
  std::printf("\n\nper-circuit detail:\n%-22s %7s %6s %9s %10s\n", "name",
              "cells", "flops", "worst ps", "power uW");
  for (const auto& lc : ds) {
    double worst = 0;
    for (const double at : lc.flop_arrival) worst = std::max(worst, at);
    std::printf("%-22s %7zu %6zu %9.0f %10.1f\n",
                lc.netlist.name().c_str(), lc.netlist.num_cells(),
                lc.netlist.flops().size(), worst, lc.power_uw);
  }
  return 0;
}
