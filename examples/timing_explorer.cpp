// Timing explorer: synthesize a design under different optimization
// recipes, run STA on each and print worst paths — the classic
// "what did the flow do to my timing" loop, entirely with the in-repo
// substrates.
//
// Usage: ./build/examples/timing_explorer [family] [size]
//        (default: signed_mac 3)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/generators.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

using namespace moss;

namespace {

void report(const char* recipe, const netlist::Netlist& nl) {
  const sta::TimingAnalysis ta(nl);
  const auto st = netlist::stats(nl);
  std::printf("%-22s %6zu cells  %3d levels  area %7.1f  worst arrival "
              "%7.1f ps\n",
              recipe, st.cells, st.levels, st.area, ta.worst_arrival());

  const auto path = ta.critical_path(ta.worst_endpoint());
  std::printf("  critical path (%zu stages), endpoint first:\n", path.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(path.size(), 8); ++i) {
    const auto& n = nl.node(path[i].node);
    const char* type =
        n.kind == netlist::NodeKind::kCell
            ? nl.library().type(n.type).name.c_str()
            : (n.kind == netlist::NodeKind::kPrimaryInput ? "PI" : "PO");
    std::printf("    %-24s %-8s @ %7.1f ps\n", n.name.c_str(), type,
                path[i].arrival_ps);
  }
  if (path.size() > 8) std::printf("    ... %zu more\n", path.size() - 8);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "signed_mac";
  const int size = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto& lib = cell::standard_library();

  data::DesignSpec spec{family, size, 2024, family + "_explore"};
  const rtl::Module m = data::generate(spec);
  std::printf("Design: %s (size %d) — %zu registers, %zu outputs\n\n",
              family.c_str(), size, m.regs.size(), m.outputs.size());

  synth::SynthOptions raw;
  raw.merge_gate_trees = false;
  raw.fuse_inverters = false;
  raw.insert_buffers = false;
  raw.sweep_dead_logic = true;
  report("elaborated only", synth::synthesize(m, lib, raw));
  std::printf("\n");

  synth::SynthOptions no_buf;
  no_buf.insert_buffers = false;
  report("mapped, no buffering", synth::synthesize(m, lib, no_buf));
  std::printf("\n");

  report("full flow", synth::synthesize(m, lib));

  // Show how the flow traded area for drive fixes.
  const auto full = synth::synthesize(m, lib);
  int buffers = 0;
  for (const auto& n : full.nodes()) {
    if (n.kind != netlist::NodeKind::kCell) continue;
    const auto& t = full.library().type(n.type);
    if (t.name == "BUF" || t.name == "BUFX4") ++buffers;
  }
  std::printf("\nBuffers inserted by the full flow: %d\n", buffers);
  return 0;
}
