// moss_cli — command-line driver for the EDA substrate flow.
//
//   moss_cli lint   <design>             RTL lint warnings
//   moss_cli synth  <design> [out.v]     synthesize, write structural Verilog
//   moss_cli report <design>             stats + timing + power report
//   moss_cli fault  <design> [cycles]    stuck-at coverage
//   moss_cli formal <design_a> <design_b>  equivalence (BDD, sim fallback)
//   moss_cli sat verify <design_a> <design_b>  exact SAT equivalence
//   moss_cli sat mine <design>           mutate -> prove -> export negatives
//   moss_cli corrupt <design>            emit corrupted-but-parseable RTL
//                                        variants + provenance JSONL
//   moss_cli vcd    <design> <out.vcd> [cycles]  waveform dump
//   moss_cli train  <design>... [--threads N] [--checkpoint BASE]
//                   [--checkpoint-every N] [--resume] [--save CKPT]
//                                        train a small MOSS model
//   moss_cli ckpt   <file.ckpt>          validate + summarize a checkpoint
//
// <design> is either a path to a Verilog file or "family:size" (e.g.
// "alu:2") naming a generated design.
//
// Exit codes: 0 success, 1 analysis found problems (lint/formal/reset
// mismatches), 2 usage or general error, 3 checkpoint missing/corrupt.

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "moss.hpp"

using namespace moss;

namespace {

rtl::Module load_design(const std::string& arg) {
  const auto colon = arg.find(':');
  if (arg.size() > 2 && arg.substr(arg.size() - 2) == ".v") {
    std::ifstream in(arg);
    MOSS_CHECK(in.is_open(), "cannot open " + arg);
    std::stringstream ss;
    ss << in.rdbuf();
    return rtl::parse_verilog(ss.str());
  }
  data::DesignSpec spec;
  spec.family = colon == std::string::npos ? arg : arg.substr(0, colon);
  spec.size_hint =
      colon == std::string::npos ? 2 : std::atoi(arg.c_str() + colon + 1);
  spec.seed = 1;
  spec.name = spec.family + "_cli";
  return data::generate(spec);
}

netlist::Netlist synth_design(const std::string& arg) {
  return synth::synthesize(load_design(arg), cell::standard_library());
}

int cmd_lint(const std::string& arg) {
  const rtl::Module m = load_design(arg);
  const auto issues = rtl::lint(m);
  if (issues.empty()) {
    std::printf("%s: clean (no lint warnings)\n", m.name.c_str());
    return 0;
  }
  std::fputs(rtl::to_string(issues).c_str(), stdout);
  return 1;
}

int cmd_synth(const std::string& arg, const char* out_path) {
  const netlist::Netlist nl = synth_design(arg);
  const auto st = netlist::stats(nl);
  std::printf("%s: %zu cells (%zu flops), %d levels, area %.1f\n",
              nl.name().c_str(), st.cells, st.flops, st.levels, st.area);
  const std::string v = netlist::to_structural_verilog(nl);
  if (out_path) {
    std::ofstream out(out_path);
    MOSS_CHECK(out.is_open(), std::string("cannot write ") + out_path);
    out << v;
    std::printf("wrote %s\n", out_path);
  } else {
    std::fputs(v.c_str(), stdout);
  }
  return 0;
}

int cmd_report(const std::string& arg) {
  const netlist::Netlist nl = synth_design(arg);
  const auto st = netlist::stats(nl);
  std::printf("== %s ==\n%zu cells, %zu flops, %zu PIs, %zu POs, %d levels\n\n",
              nl.name().c_str(), st.cells, st.flops, st.inputs, st.outputs,
              st.levels);
  const sta::TimingAnalysis ta(nl);
  std::fputs(ta.report_timing(2).c_str(), stdout);
  Rng rng(1);
  const auto act = sim::random_activity(nl, 2000, rng);
  const auto pw = power::analyze_power(nl, act.toggle);
  std::printf("\npower @1GHz: %.1f uW (dynamic %.1f, leakage %.1f)\n",
              pw.total_uw, pw.dynamic_uw, pw.leakage_uw);
  return 0;
}

int cmd_fault(const std::string& arg, std::uint64_t cycles) {
  const netlist::Netlist nl = synth_design(arg);
  Rng rng(2);
  const auto faults = sim::enumerate_faults(nl);
  const auto campaign = sim::simulate_faults(nl, faults, cycles, rng);
  std::printf("%s: %zu faults, %zu detected in %llu cycles -> %.1f%% "
              "coverage\n",
              nl.name().c_str(), faults.size(), campaign.detected,
              static_cast<unsigned long long>(cycles),
              100 * campaign.coverage);
  return 0;
}

int cmd_formal(const std::string& a_arg, const std::string& b_arg) {
  const rtl::Module ma = load_design(a_arg);
  const rtl::Module mb = load_design(b_arg);
  const netlist::Netlist a =
      synth::synthesize(ma, cell::standard_library());
  const netlist::Netlist b =
      synth::synthesize(mb, cell::standard_library());
  const bdd::FormalResult res = bdd::check_equivalence_formal(a, b);
  switch (res.status) {
    case bdd::FormalResult::Status::kEquivalent:
      std::printf("EQUIVALENT (formal): %s\n", res.detail.c_str());
      return 0;
    case bdd::FormalResult::Status::kNotEquivalent:
      std::printf("NOT EQUIVALENT: %s\n", res.detail.c_str());
      return 1;
    case bdd::FormalResult::Status::kResourceLimit: {
      std::printf("BDD limit hit (%s); falling back to co-simulation\n",
                  res.detail.c_str());
      Rng rng(3);
      const auto sim_res = sim::check_equivalence(ma, b, 2000, rng);
      std::printf("%s (simulation, %llu cycles)\n",
                  sim_res.equivalent ? "no mismatch found" : "MISMATCH",
                  static_cast<unsigned long long>(sim_res.cycles_checked));
      return sim_res.equivalent ? 0 : 1;
    }
  }
  return 2;
}

// sat verify: exact miter-based equivalence via the CDCL oracle. Unlike
// `formal` (BDD with a simulation fallback that can only say "no mismatch
// found"), every answer here is definitive or typed UNKNOWN — and every
// NOT_EQUIVALENT ships a counterexample replayed through aig_sim.
int cmd_sat_verify(const std::string& a_arg, const std::string& b_arg,
                   int frames, std::uint64_t conflicts) {
  const netlist::Netlist a = synth_design(a_arg);
  const netlist::Netlist b = synth_design(b_arg);
  sat::OracleConfig cfg;
  cfg.max_frames = frames;
  cfg.conflict_budget = conflicts;
  const sat::EquivOracle oracle(cfg);
  const sat::OracleResult res = oracle.check(a, b);
  std::printf("%s: %s\n", sat::to_string(res.verdict), res.detail.c_str());
  std::printf("  conflicts=%llu decisions=%llu solver_calls=%zu "
              "miter_ands=%zu frames_checked=%d\n",
              static_cast<unsigned long long>(res.stats.conflicts),
              static_cast<unsigned long long>(res.stats.decisions),
              res.stats.solver_calls, res.stats.miter_ands,
              res.frames_checked);
  if (res.verdict == sat::Verdict::kNotEquivalent &&
      !res.cex.inputs.empty()) {
    std::printf("  counterexample (%s, %zu frame(s), mismatch at %s):\n",
                res.cex.confirmed ? "sim-confirmed" : "unconfirmed",
                res.cex.frames.size(), res.cex.mismatch_output.c_str());
    for (std::size_t f = 0; f < res.cex.frames.size(); ++f) {
      std::printf("    f%zu:", f);
      for (std::size_t i = 0; i < res.cex.inputs.size(); ++i) {
        std::printf(" %s=%d", res.cex.inputs[i].c_str(),
                    res.cex.frames[f][i] != 0 ? 1 : 0);
      }
      std::printf("\n");
    }
  }
  switch (res.verdict) {
    case sat::Verdict::kEquivalent: return 0;
    case sat::Verdict::kNotEquivalent: return 1;
    case sat::Verdict::kUnknown: return 4;
  }
  return 2;
}

int cmd_sat_mine(const std::string& arg, std::size_t count,
                 std::uint64_t seed, const std::string& out_dir,
                 float margin) {
  const netlist::Netlist golden = synth_design(arg);
  sat::MinerConfig cfg;
  cfg.seed = seed;
  cfg.candidates = count;
  cfg.margin = margin;
  // No trained FEP head on the CLI path: every proven-inequivalent mutant
  // is a negative. Tests and the bench wire a real scorer through the
  // library API.
  const sat::MineReport rep =
      sat::mine_hard_negatives(golden, sat::FepScorer{}, cfg);
  std::printf("%s: %zu candidate(s) -> %zu inequivalent, %zu benign, "
              "%zu unknown; %zu negative(s) mined\n",
              golden.name().c_str(), rep.candidates,
              rep.proven_inequivalent, rep.proven_equivalent, rep.unknown,
              rep.negatives.size());
  for (const auto& neg : rep.negatives) {
    std::printf("  %-28s %s node=%s conflicts=%llu cex_frames=%d\n",
                neg.name.c_str(), data::to_string(neg.mutation.kind),
                neg.mutation.node.c_str(),
                static_cast<unsigned long long>(neg.conflicts),
                neg.cex_frames);
  }
  if (!out_dir.empty()) {
    const std::size_t files = sat::export_mined(rep, out_dir);
    std::printf("wrote %zu file(s) to %s\n", files, out_dir.c_str());
  }
  return rep.negatives.empty() ? 1 : 0;
}

void ensure_out_dir(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!partial.empty() && partial != "/") {
        ::mkdir(partial.c_str(), 0755);
      }
    }
    if (i < dir.size()) partial.push_back(dir[i]);
  }
  struct stat st {};
  MOSS_CHECK(::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
             "cannot create output directory " + dir);
}

int cmd_corrupt(const std::string& arg, std::size_t count,
                std::uint64_t seed, const std::vector<std::string>& passes,
                const std::string& out_dir) {
  const rtl::Module golden = load_design(arg);
  std::vector<data::CorruptionKind> kinds;
  for (const std::string& name : passes) {
    data::CorruptionKind kind;
    if (!data::corruption_kind_from_string(name, &kind)) {
      std::fprintf(stderr, "unknown corruption pass '%s' (known:", name.c_str());
      for (const data::CorruptionKind k : data::all_corruption_kinds()) {
        std::fprintf(stderr, " %s", data::to_string(k));
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    kinds.push_back(kind);
  }
  if (!out_dir.empty()) ensure_out_dir(out_dir);
  std::ofstream jsonl;
  if (!out_dir.empty()) {
    jsonl.open(out_dir + "/corrupt.jsonl", std::ios::out | std::ios::trunc);
    MOSS_CHECK(jsonl.is_open(), "cannot write " + out_dir + "/corrupt.jsonl");
  }
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    data::CorruptConfig ccfg;
    ccfg.seed = seed + i;
    ccfg.severity = 1 + static_cast<int>(i % 3);
    ccfg.passes = kinds;
    const data::CorruptedRtl corr = data::corrupt_module(golden, ccfg);
    if (corr.applied.empty()) continue;  // no eligible site under these passes
    rtl::Module variant = corr.module;
    variant.name = golden.name + "__corr" + std::to_string(i);
    const std::string provenance = data::provenance_json(
        variant.name, ccfg.seed, ccfg.severity, corr.applied);
    std::printf("%s: %zu corruption(s) [%s]\n", variant.name.c_str(),
                corr.applied.size(), data::to_string(corr.applied[0].kind));
    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + variant.name + ".v";
      std::ofstream vf(path, std::ios::out | std::ios::trunc);
      MOSS_CHECK(vf.is_open(), "cannot write " + path);
      vf << rtl::to_verilog(variant);
      jsonl << provenance << "\n";
    }
    ++emitted;
  }
  if (!out_dir.empty()) {
    std::printf("wrote %zu variant(s) + corrupt.jsonl to %s\n", emitted,
                out_dir.c_str());
  }
  return emitted > 0 ? 0 : 1;
}

int cmd_reset(const std::string& arg) {
  const netlist::Netlist nl = synth_design(arg);
  const sim::ResetCoverage cov = sim::analyze_reset(nl);
  std::printf("%s: %zu/%zu flops initialized by reset (%.1f%%)\n",
              nl.name().c_str(), cov.initialized, cov.total_flops,
              100 * cov.coverage);
  for (const auto& name : cov.uninitialized) {
    std::printf("  X after reset: %s\n", name.c_str());
  }
  return cov.uninitialized.empty() ? 0 : 1;
}

int cmd_vcd(const std::string& arg, const char* out_path,
            std::uint64_t cycles) {
  const netlist::Netlist nl = synth_design(arg);
  std::ofstream out(out_path);
  MOSS_CHECK(out.is_open(), std::string("cannot write ") + out_path);
  sim::VcdWriter vcd(out, nl);
  vcd.add_ports();
  sim::Simulator s(nl);
  Rng rng(4);
  std::vector<std::uint8_t> pis(nl.inputs().size());
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const std::string& n = nl.node(nl.inputs()[i]).name;
      pis[i] = (n == "rst" && c < 2) ? 1 : (rng.bernoulli(0.5) ? 1 : 0);
    }
    s.step(pis);
    vcd.sample(s);
  }
  vcd.finish();
  std::printf("wrote %s (%llu cycles, %zu signals)\n", out_path,
              static_cast<unsigned long long>(cycles),
              nl.inputs().size() + nl.outputs().size());
  return 0;
}

struct TrainOptions {
  std::size_t threads = 1;
  std::string checkpoint_base;  ///< enables crash-safe epoch snapshots
  int checkpoint_every = 1;
  bool resume = false;
  std::string save_path;  ///< final parameter checkpoint
};

int cmd_ckpt(const std::string& path) {
  const tensor::CheckpointFile ckpt = tensor::read_checkpoint_file(path);
  std::printf("%s: format v%u, %zu sections, all checksums OK\n",
              path.c_str(), tensor::kCheckpointVersion,
              ckpt.sections().size());
  for (const auto& [name, payload] : ckpt.sections()) {
    std::printf("  %-28s %zu bytes\n", name.c_str(), payload.size());
  }
  return 0;
}

int cmd_train(const std::vector<std::string>& designs,
              const TrainOptions& opt) {
  const std::size_t threads = opt.threads;
  core::WorkflowConfig cfg;
  cfg.model.hidden = 16;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 400;
  cfg.dataset.threads = threads;
  cfg.encoder = {2048, 16, 9};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 20000;
  cfg.pretrain.epochs = 6;
  cfg.pretrain.threads = threads;
  cfg.pretrain.grad_accum = threads;
  cfg.align.epochs = 6;
  cfg.align.threads = threads;
  cfg.threads = threads;
  if (!opt.checkpoint_base.empty()) {
    cfg.enable_checkpointing(opt.checkpoint_base, opt.checkpoint_every,
                             opt.resume);
  }

  core::MossWorkflow wf(cfg);
  std::vector<data::DesignSpec> specs;
  for (const std::string& d : designs) {
    if (d.size() > 2 && d.substr(d.size() - 2) == ".v") {
      wf.add_module(load_design(d));  // parsed RTL goes through label_module
    } else {
      const auto colon = d.find(':');
      data::DesignSpec spec;
      spec.family = colon == std::string::npos ? d : d.substr(0, colon);
      spec.size_hint =
          colon == std::string::npos ? 2 : std::atoi(d.c_str() + colon + 1);
      spec.seed = 1;
      spec.name = spec.family + "_cli" + std::to_string(specs.size());
      specs.push_back(spec);
    }
  }
  wf.add_designs(specs);  // labeled `threads` designs at a time
  std::printf("training on %zu circuits with %zu thread(s)\n",
              wf.num_circuits(), threads);
  if (opt.resume && !opt.checkpoint_base.empty()) {
    std::printf("resuming from %s.{pretrain,align}.ckpt if present\n",
                opt.checkpoint_base.c_str());
  }

  wf.fine_tune_encoder();
  const core::PretrainReport pre = wf.pretrain_model();
  std::printf("pretrain: loss %.4f -> %.4f over %zu epochs",
              pre.total.front(), pre.total.back(), pre.total.size());
  if (pre.bad_steps > 0) {
    std::printf("  (%zu non-finite steps skipped)", pre.bad_steps);
  }
  std::printf("\n");
  if (wf.num_circuits() >= 2) {
    const core::AlignReport al = wf.align_model();
    if (!al.total.empty()) {
      std::printf("align:    loss %.4f -> %.4f over %zu epochs",
                  al.total.front(), al.total.back(), al.total.size());
      if (al.bad_steps > 0) {
        std::printf("  (%zu non-finite steps skipped)", al.bad_steps);
      }
      std::printf("\n");
    }
  }
  if (!opt.save_path.empty()) {
    wf.save_checkpoint(opt.save_path);
    std::printf("saved model parameters to %s\n", opt.save_path.c_str());
  }
  for (std::size_t i = 0; i < wf.num_circuits(); ++i) {
    const core::TaskAccuracy acc = wf.evaluate(i);
    std::printf("  %-24s trp %.3f  atp %.3f  pp %.3f\n",
                wf.circuit(i).netlist.name().c_str(), acc.trp, acc.atp,
                acc.pp);
  }
  return 0;
}

struct ServeOptions {
  std::size_t cache_mb = 64;
  std::size_t max_batch = 8;
  int max_delay_ms = 2;
  std::size_t threads = 0;      ///< 0 = hardware concurrency
  int max_retries = 2;          ///< retries after the first attempt
  double shed_threshold = 0.75; ///< queue fraction; >=1 disables shedding
  bool allow_stale = false;     ///< serve EMBED/RANK from stale cache
};

/// Serve a trained checkpoint over the stdin/stdout line protocol.
///
/// The design list must match the one passed to `train --save`: the model's
/// parameter shapes depend on the fine-tuned encoder geometry, which is
/// reproduced here by fine-tuning on the same corpus with the same seed.
int cmd_serve(const std::string& ckpt_path,
              const std::vector<std::string>& designs,
              const ServeOptions& opt) {
  // Exact cmd_train config (shapes must reproduce).
  core::WorkflowConfig cfg;
  cfg.model.hidden = 16;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 400;
  cfg.encoder = {2048, 16, 9};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 20000;
  cfg.pretrain.epochs = 6;
  cfg.align.epochs = 6;

  // Label circuits in cmd_train's workflow order: .v modules in CLI order
  // first, then generated specs numbered by generated-only index.
  const auto& lib = cell::standard_library();
  std::vector<std::shared_ptr<const data::LabeledCircuit>> vmods, gens;
  std::vector<std::string> vtokens, gtokens;
  for (const std::string& d : designs) {
    if (d.size() > 2 && d.substr(d.size() - 2) == ".v") {
      vmods.push_back(std::make_shared<data::LabeledCircuit>(
          data::label_module(load_design(d), lib, cfg.dataset)));
      vtokens.push_back(d);
    } else {
      const auto colon = d.find(':');
      data::DesignSpec spec;
      spec.family = colon == std::string::npos ? d : d.substr(0, colon);
      spec.size_hint =
          colon == std::string::npos ? 2 : std::atoi(d.c_str() + colon + 1);
      spec.seed = 1;
      spec.name = spec.family + "_cli" + std::to_string(gens.size());
      gens.push_back(std::make_shared<data::LabeledCircuit>(
          data::label_circuit(spec, lib, cfg.dataset)));
      gtokens.push_back(d);
    }
  }
  std::vector<std::shared_ptr<const data::LabeledCircuit>> circuits = vmods;
  circuits.insert(circuits.end(), gens.begin(), gens.end());
  std::vector<std::string> tokens = vtokens;
  tokens.insert(tokens.end(), gtokens.begin(), gtokens.end());

  std::vector<std::string> corpus;
  for (const auto& lc : circuits) corpus.push_back(lc->module_text);
  serve::ModelRegistry registry;
  const auto session = serve::MossSession::load(cfg, corpus, ckpt_path);
  registry.install("default", session);
  std::fprintf(stderr, "serve: loaded %s (%zu pool design(s))\n",
               ckpt_path.c_str(), circuits.size());

  serve::EmbeddingCache cache(opt.cache_mb << 20);
  serve::EngineConfig ecfg;
  ecfg.max_batch = opt.max_batch;
  ecfg.max_delay_ms = opt.max_delay_ms;
  ecfg.threads = opt.threads;
  ecfg.admission.enabled = opt.shed_threshold < 1.0;
  ecfg.admission.shed_queue_fraction = opt.shed_threshold;
  ecfg.allow_stale = opt.allow_stale;
  serve::InferenceEngine engine(registry, &cache, ecfg);

  std::vector<std::shared_ptr<const core::CircuitBatch>> pool;
  for (const auto& lc : circuits) {
    pool.push_back(std::make_shared<core::CircuitBatch>(session->build(*lc)));
  }
  engine.register_pool("pool", pool);

  serve::ProtocolConfig pcfg;
  pcfg.retry.max_attempts = 1 + opt.max_retries;
  auto boot = std::make_shared<
      std::unordered_map<std::string,
                         std::shared_ptr<const data::LabeledCircuit>>>();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    (*boot)[tokens[i]] = circuits[i];
  }
  const data::DatasetConfig dcfg = cfg.dataset;
  pcfg.load_design = [boot, dcfg, &lib](const std::string& token)
      -> std::shared_ptr<const data::LabeledCircuit> {
    const auto it = boot->find(token);
    if (it != boot->end()) return it->second;
    return std::make_shared<data::LabeledCircuit>(
        data::label_module(load_design(token), lib, dcfg));
  };

  serve::ProtocolHandler handler(engine, pcfg);
  const std::size_t handled = handler.run(std::cin, std::cout);
  std::fprintf(stderr, "serve: handled %zu request(s)\n", handled);
  std::fputs(engine.metrics_text().c_str(), stderr);
  return 0;
}

// ---------------------------------------------------------------------------
// plan compile / inspect

int cmd_plan_compile(const std::string& arg, const std::string& out,
                     std::size_t threads) {
  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 2000;
  dcfg.threads = threads;
  const data::LabeledCircuit lc = data::label_module(load_design(arg), lib,
                                                     dcfg);
  const lm::TextEncoder enc({2048, 16, 9});
  const core::CircuitBatch batch = core::build_batch(lc, enc, {});
  const plan::ExecutionPlan p = plan::compile(lc.netlist, batch);
  plan::save(p, out);
  const std::string blob = plan::serialize(p);
  std::printf("%s: %zu nodes (%llu cells, %zu flops), %u clusters, "
              "%u unique cones\n",
              p.name.c_str(), p.num_nodes(),
              static_cast<unsigned long long>(p.num_cells), p.flops.size(),
              p.num_clusters, p.unique_cones);
  std::printf("wrote %s (%zu bytes, batch hash %016llx)\n", out.c_str(),
              blob.size(), static_cast<unsigned long long>(p.batch_hash));
  return 0;
}

int cmd_plan_inspect(const std::string& path, bool use_mmap) {
  const plan::ExecutionPlan p = plan::load(path, use_mmap);
  std::printf("== %s ==\n", p.name.c_str());
  std::printf("nodes:    %zu (%llu cells, %zu flops, %zu PIs, %zu POs)\n",
              p.num_nodes(), static_cast<unsigned long long>(p.num_cells),
              p.flops.size(), p.inputs.size(), p.outputs.size());
  std::printf("levels:   %zu | clusters: %u | feature dim: %u | "
              "prompt dim: %u\n",
              p.level_offset.empty() ? 0 : p.level_offset.size() - 1,
              p.num_clusters, p.feature_dim, p.prompt_dim);
  const std::size_t fwd_steps =
      p.fwd_step_offset.empty() ? 0 : p.fwd_step_offset.size() - 1;
  const std::size_t turn_steps =
      p.turn_step_offset.empty() ? 0 : p.turn_step_offset.size() - 1;
  std::printf("schedule: %zu forward + %zu turnaround steps, %zu groups, "
              "%zu edges\n",
              fwd_steps, turn_steps, p.group_cluster.size(),
              p.edge_src.size());
  std::printf("cones:    %u unique over %zu nodes (%.1f%% shared)\n",
              p.unique_cones, p.num_nodes(),
              p.num_nodes() == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(p.unique_cones) /
                                       static_cast<double>(p.num_nodes())));
  std::printf("batch hash %016llx | power %.1f uW | blob %zu bytes\n",
              static_cast<unsigned long long>(p.batch_hash), p.power_uw,
              plan::serialize(p).size());
  return 0;
}

void usage() {
  std::fputs(
      "usage: moss_cli <command> ...\n"
      "  lint   <design>\n"
      "  synth  <design> [out.v]\n"
      "  report <design>\n"
      "  fault  <design> [cycles]\n"
      "  formal <design_a> <design_b>\n"
      "  sat    verify <design_a> <design_b> [--frames N] [--conflicts N]\n"
      "  sat    mine <design> [--count N] [--seed S] [--out DIR]\n"
      "         [--margin F]\n"
      "  corrupt <design> [--count N] [--seed S] [--passes a,b,...]\n"
      "         [--out DIR]\n"
      "  reset  <design>\n"
      "  vcd    <design> <out.vcd> [cycles]\n"
      "  train  <design>... [--threads N] [--checkpoint BASE]\n"
      "         [--checkpoint-every N] [--resume] [--save CKPT]\n"
      "  ckpt   <file.ckpt>\n"
      "  serve  <file.ckpt> <design>... [--cache-mb N] [--max-batch N]\n"
      "         [--max-delay-ms N] [--threads N] [--max-retries N]\n"
      "         [--shed-threshold F] [--allow-stale]\n"
      "  plan   compile <design> --out <file.mossplan> [--threads N]\n"
      "  plan   inspect <file.mossplan> [--mmap]\n"
      "<design> = verilog file (*.v) or family:size (e.g. alu:2)\n"
      "exit codes: 0 ok, 1 analysis failed, 2 usage/error, 3 bad "
      "checkpoint,\n"
      "            4 sat verify inconclusive (depth/conflict bound)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "lint") return cmd_lint(argv[2]);
    if (cmd == "synth") return cmd_synth(argv[2], argc > 3 ? argv[3] : nullptr);
    if (cmd == "report") return cmd_report(argv[2]);
    if (cmd == "fault") {
      return cmd_fault(argv[2], argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                         : 256);
    }
    if (cmd == "reset") return cmd_reset(argv[2]);
    if (cmd == "formal") {
      if (argc < 4) {
        usage();
        return 2;
      }
      return cmd_formal(argv[2], argv[3]);
    }
    if (cmd == "sat") {
      const std::string sub = argv[2];
      if (sub == "verify") {
        std::vector<std::string> designs;
        int frames = 16;
        std::uint64_t conflicts = 200000;
        for (int i = 3; i < argc; ++i) {
          const std::string a = argv[i];
          if (a == "--frames" && i + 1 < argc) {
            frames = std::max(1, std::atoi(argv[++i]));
          } else if (a == "--conflicts" && i + 1 < argc) {
            conflicts = std::strtoull(argv[++i], nullptr, 10);
          } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown sat verify option %s\n", a.c_str());
            usage();
            return 2;
          } else {
            designs.push_back(a);
          }
        }
        if (designs.size() != 2) {
          usage();
          return 2;
        }
        return cmd_sat_verify(designs[0], designs[1], frames, conflicts);
      }
      if (sub == "mine") {
        std::string design, out_dir;
        std::size_t count = 24;
        std::uint64_t seed = 1;
        float margin = 0.0f;
        for (int i = 3; i < argc; ++i) {
          const std::string a = argv[i];
          if (a == "--count" && i + 1 < argc) {
            count = static_cast<std::size_t>(
                std::max(1, std::atoi(argv[++i])));
          } else if (a == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
          } else if (a == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
          } else if (a == "--margin" && i + 1 < argc) {
            margin = static_cast<float>(std::atof(argv[++i]));
          } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown sat mine option %s\n", a.c_str());
            usage();
            return 2;
          } else {
            design = a;
          }
        }
        if (design.empty()) {
          usage();
          return 2;
        }
        return cmd_sat_mine(design, count, seed, out_dir, margin);
      }
      usage();
      return 2;
    }
    if (cmd == "corrupt") {
      std::string design, out_dir;
      std::vector<std::string> passes;
      std::size_t count = 4;
      std::uint64_t seed = 1;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--count" && i + 1 < argc) {
          count = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
        } else if (a == "--seed" && i + 1 < argc) {
          seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--out" && i + 1 < argc) {
          out_dir = argv[++i];
        } else if (a == "--passes" && i + 1 < argc) {
          std::stringstream ss(argv[++i]);
          std::string tok;
          while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) passes.push_back(tok);
          }
        } else if (a.rfind("--", 0) == 0) {
          std::fprintf(stderr, "unknown corrupt option %s\n", a.c_str());
          usage();
          return 2;
        } else {
          design = a;
        }
      }
      if (design.empty()) {
        usage();
        return 2;
      }
      return cmd_corrupt(design, count, seed, passes, out_dir);
    }
    if (cmd == "vcd") {
      if (argc < 4) {
        usage();
        return 2;
      }
      return cmd_vcd(argv[2], argv[3],
                     argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 64);
    }
    if (cmd == "ckpt") return cmd_ckpt(argv[2]);
    if (cmd == "plan") {
      const std::string sub = argv[2];
      if (sub == "inspect") {
        std::string path;
        bool use_mmap = false;
        for (int i = 3; i < argc; ++i) {
          const std::string a = argv[i];
          if (a == "--mmap") {
            use_mmap = true;
          } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown plan option %s\n", a.c_str());
            usage();
            return 2;
          } else {
            path = a;
          }
        }
        if (path.empty()) {
          usage();
          return 2;
        }
        return cmd_plan_inspect(path, use_mmap);
      }
      if (sub == "compile") {
        std::string design, out;
        std::size_t threads = 1;
        for (int i = 3; i < argc; ++i) {
          const std::string a = argv[i];
          if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
          } else if (a == "--threads" && i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::max(1, std::atoi(argv[++i])));
          } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown plan option %s\n", a.c_str());
            usage();
            return 2;
          } else {
            design = a;
          }
        }
        if (design.empty() || out.empty()) {
          usage();
          return 2;
        }
        return cmd_plan_compile(design, out, threads);
      }
      usage();
      return 2;
    }
    if (cmd == "train") {
      std::vector<std::string> designs;
      TrainOptions opt;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--threads" && i + 1 < argc) {
          opt.threads = static_cast<std::size_t>(
              std::max(1, std::atoi(argv[++i])));
        } else if (a.rfind("--threads=", 0) == 0) {
          opt.threads = static_cast<std::size_t>(
              std::max(1, std::atoi(a.c_str() + 10)));
        } else if (a == "--checkpoint" && i + 1 < argc) {
          opt.checkpoint_base = argv[++i];
        } else if (a == "--checkpoint-every" && i + 1 < argc) {
          opt.checkpoint_every = std::max(1, std::atoi(argv[++i]));
        } else if (a == "--resume") {
          opt.resume = true;
        } else if (a == "--save" && i + 1 < argc) {
          opt.save_path = argv[++i];
        } else if (a.rfind("--", 0) == 0) {
          std::fprintf(stderr, "unknown train option %s\n", a.c_str());
          usage();
          return 2;
        } else {
          designs.push_back(a);
        }
      }
      if (designs.empty()) {
        usage();
        return 2;
      }
      return cmd_train(designs, opt);
    }
    if (cmd == "serve") {
      const std::string ckpt = argv[2];
      std::vector<std::string> designs;
      ServeOptions opt;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--cache-mb" && i + 1 < argc) {
          opt.cache_mb = static_cast<std::size_t>(
              std::max(1, std::atoi(argv[++i])));
        } else if (a == "--max-batch" && i + 1 < argc) {
          opt.max_batch = static_cast<std::size_t>(
              std::max(1, std::atoi(argv[++i])));
        } else if (a == "--max-delay-ms" && i + 1 < argc) {
          opt.max_delay_ms = std::max(0, std::atoi(argv[++i]));
        } else if (a == "--threads" && i + 1 < argc) {
          opt.threads = static_cast<std::size_t>(
              std::max(0, std::atoi(argv[++i])));
        } else if (a == "--max-retries" && i + 1 < argc) {
          opt.max_retries = std::max(0, std::atoi(argv[++i]));
        } else if (a == "--shed-threshold" && i + 1 < argc) {
          opt.shed_threshold = std::atof(argv[++i]);
        } else if (a == "--allow-stale") {
          opt.allow_stale = true;
        } else if (a.rfind("--", 0) == 0) {
          std::fprintf(stderr, "unknown serve option %s\n", a.c_str());
          usage();
          return 2;
        } else {
          designs.push_back(a);
        }
      }
      if (designs.empty()) {
        usage();
        return 2;
      }
      return cmd_serve(ckpt, designs, opt);
    }
  } catch (const ContextError& e) {
    // Structured checkpoint/persistence failures: say exactly which file
    // and section failed, and exit with a code scripts can dispatch on.
    std::fprintf(stderr, "checkpoint error: %s\n", e.what());
    return 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
