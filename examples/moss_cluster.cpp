// moss_cluster — shard-kill-survivable multi-process serving for MOSS.
//
//   moss_cluster <design>... --shards N [--replicas R] [--ckpt FILE]
//                [--cache-dir DIR] [--serve-bin PATH] [--run-dir DIR]
//
// Spawns N moss_serve worker processes (one Unix socket + one persistent
// MOSSSEG1 cache directory each), supervises them — SIGCHLD reaping,
// bounded-backoff respawn of dirty deaths, clean exits honored — and
// routes the line protocol from stdin across the fleet with consistent
// hashing: the same design always lands on the same shard's warm cache,
// and when that shard is down its keys fail over clockwise to a replica.
//
// Kill-a-shard demo (see README):
//   $ moss_cluster alu:2 crc:2 fifo_ctrl:2 --shards 3 --ckpt moss.ckpt
//         --cache-dir /tmp/moss-cache      (one command line)
//   shard shard0 pid 41211
//   ...
//   ATP alu:2                  # routed to its owner shard
//   OK ATP n=8 ...
//   $ kill -9 41211            # murder the owner mid-traffic
//   ATP alu:2                  # replica answers (or typed shard_down);
//   OK ATP n=8 ...             # supervisor respawns shard0, which warm-
//   HEALTH                     # starts from its cache segments
//   OK HEALTH state=ok shards=3 up=3 down=0 ...
//
// Launcher-local commands on top of the routed protocol:
//   SHARDS   supervisor view: state/pid/restarts per shard
//   QUIT     graceful fleet shutdown (SIGTERM → drain+flush → exit 0)

#include <csignal>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "moss.hpp"

using namespace moss;

namespace {

struct Options {
  std::vector<std::string> designs;
  std::size_t shards = 2;
  std::size_t replicas = 1;
  std::string ckpt;
  std::string cache_dir;            ///< per-shard subdirs created inside
  std::string run_dir = "/tmp";     ///< socket files live here
  std::string serve_bin;            ///< default: moss_serve next to argv[0]
  int client_timeout_ms = 30000;    ///< per-exchange shard timeout
};

void usage() {
  std::fputs(
      "usage: moss_cluster <design>... [--shards N] [--replicas R]\n"
      "       [--ckpt FILE] [--cache-dir DIR] [--run-dir DIR]\n"
      "       [--serve-bin PATH] [--timeout-ms N]\n"
      "<design> = verilog file (*.v) or family:size (e.g. alu:2)\n",
      stderr);
}

volatile std::sig_atomic_t g_shutdown = 0;
void on_terminate(int) { g_shutdown = 1; }

/// moss_serve sits next to this binary unless --serve-bin says otherwise.
std::string default_serve_bin(const char* argv0) {
  std::string path = argv0;
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "moss_serve";
  return path.substr(0, slash + 1) + "moss_serve";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--shards") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.shards = static_cast<std::size_t>(std::max(1, std::atoi(v)));
    } else if (a == "--replicas") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.replicas = static_cast<std::size_t>(std::max(0, std::atoi(v)));
    } else if (a == "--ckpt") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.ckpt = v;
    } else if (a == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.cache_dir = v;
    } else if (a == "--run-dir") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.run_dir = v;
    } else if (a == "--serve-bin") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.serve_bin = v;
    } else if (a == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.client_timeout_ms = std::max(100, std::atoi(v));
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
      return 2;
    } else {
      opt.designs.push_back(a);
    }
  }
  if (opt.designs.empty()) {
    usage();
    return 2;
  }
  if (opt.serve_bin.empty()) opt.serve_bin = default_serve_bin(argv[0]);

  std::signal(SIGPIPE, SIG_IGN);
  {
    struct sigaction sa {};
    sa.sa_handler = on_terminate;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: stdin getline returns on signal
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
  }

  // Spawn the fleet. Every shard serves the full design list (any shard
  // can answer any design — routing is an affinity optimization, not a
  // partition), shares the one checkpoint, and persists its cache slice
  // into its own subdirectory.
  cluster::Supervisor supervisor;
  std::vector<std::string> sockets;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    const std::string name = "shard" + std::to_string(i);
    const std::string socket_path =
        opt.run_dir + "/moss_" + name + "_" + std::to_string(::getpid()) +
        ".sock";
    sockets.push_back(socket_path);
    cluster::ShardSpec spec;
    spec.name = name;
    spec.argv = {opt.serve_bin};
    for (const std::string& d : opt.designs) spec.argv.push_back(d);
    if (!opt.ckpt.empty()) {
      spec.argv.push_back("--ckpt");
      spec.argv.push_back(opt.ckpt);
    }
    spec.argv.push_back("--socket");
    spec.argv.push_back(socket_path);
    spec.argv.push_back("--shard-name");
    spec.argv.push_back(name);
    spec.argv.push_back("--allow-stale");
    if (!opt.cache_dir.empty()) {
      spec.argv.push_back("--cache-dir");
      spec.argv.push_back(opt.cache_dir + "/" + name);
    }
    supervisor.add_shard(std::move(spec));
    std::fprintf(stderr, "shard %s pid %d socket %s\n", name.c_str(),
                 static_cast<int>(supervisor.pid_of(i)), socket_path.c_str());
  }
  supervisor.start();

  cluster::RouterConfig rcfg;
  rcfg.replicas = opt.replicas;
  std::vector<std::unique_ptr<cluster::Backend>> backends;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    backends.push_back(std::make_unique<cluster::SocketBackend>(
        "shard" + std::to_string(i), sockets[i], opt.client_timeout_ms));
  }
  cluster::Router router(std::move(backends), rcfg);

  // Route stdin until QUIT/EOF/signal. FIFO-friendly: every response is
  // one flush, so scripted drivers see answers immediately.
  std::string line;
  bool quit = false;
  while (!quit && !g_shutdown && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "SHARDS") {
      std::cout << "OK SHARDS\n";
      for (const cluster::ShardStatus& s : supervisor.status()) {
        std::cout << s.name << " state=" << cluster::to_string(s.state)
                  << " pid=" << s.pid << " restarts=" << s.restarts << "\n";
      }
      std::cout << "." << std::endl;
      continue;
    }
    std::cout << router.route(line, &quit) << std::endl;
  }

  std::fprintf(stderr, "moss_cluster: shutting down %zu shard(s)\n",
               opt.shards);
  supervisor.shutdown();
  for (const cluster::ShardStatus& s : supervisor.status()) {
    std::fprintf(stderr, "moss_cluster: %s final state=%s restarts=%d\n",
                 s.name.c_str(), cluster::to_string(s.state), s.restarts);
  }
  for (const std::string& s : sockets) ::unlink(s.c_str());
  return 0;
}
