// Power report: simulate a design under configurable input activity and
// print a PrimePower-style report — per-cell-type breakdown, top consumers,
// dynamic vs leakage split, and a frequency sweep.
//
// Usage: ./build/examples/power_report [family] [size] [activity]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "data/generators.hpp"
#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesize.hpp"

using namespace moss;

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "wb_data_mux";
  const int size = argc > 2 ? std::atoi(argv[2]) : 3;
  const double activity = argc > 3 ? std::atof(argv[3]) : 0.5;

  const auto& lib = cell::standard_library();
  data::DesignSpec spec{family, size, 4242, family + "_pwr"};
  const auto nl = synth::synthesize(data::generate(spec), lib);
  std::printf("Design %s: %zu cells, %zu flops\n\n", nl.name().c_str(),
              nl.num_cells(), nl.flops().size());

  Rng rng(11);
  const auto act = sim::random_activity(nl, 5000, rng, activity);
  const auto rep = power::analyze_power(nl, act.toggle);

  std::printf("Total power @1GHz, %.0f%% input activity: %.1f uW "
              "(dynamic %.1f, leakage %.1f)\n\n",
              100 * activity, rep.total_uw, rep.dynamic_uw, rep.leakage_uw);

  // Per-cell-type breakdown.
  std::map<std::string, std::pair<int, double>> by_type;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<netlist::NodeId>(i));
    if (n.kind != netlist::NodeKind::kCell) continue;
    auto& [count, power] = by_type[lib.type(n.type).name];
    ++count;
    power += rep.cell_power_uw[i];
  }
  std::printf("%-10s %6s %12s %10s\n", "cell type", "count", "power uW",
              "share");
  for (const auto& [type, cp] : by_type) {
    std::printf("%-10s %6d %12.2f %9.1f%%\n", type.c_str(), cp.first,
                cp.second, 100 * cp.second / rep.total_uw);
  }

  // Top consumers.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < rep.cell_power_uw.size(); ++i) {
    if (rep.cell_power_uw[i] > 0) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return rep.cell_power_uw[a] > rep.cell_power_uw[b];
  });
  std::printf("\nTop 8 consumers:\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(8, idx.size()); ++k) {
    const auto id = static_cast<netlist::NodeId>(idx[k]);
    std::printf("  %-26s %-8s %8.3f uW  (toggle %.2f)\n",
                nl.node(id).name.c_str(),
                lib.type(nl.node(id).type).name.c_str(),
                rep.cell_power_uw[idx[k]], act.toggle[idx[k]]);
  }

  // Frequency sweep.
  std::printf("\nFrequency sweep:\n");
  for (const double ghz : {0.5, 1.0, 2.0, 3.0}) {
    power::PowerOptions opts;
    opts.clock_ghz = ghz;
    const auto r = power::analyze_power(nl, act.toggle, opts);
    std::printf("  %.1f GHz: %8.1f uW (dynamic %8.1f)\n", ghz, r.total_uw,
                r.dynamic_uw);
  }
  return 0;
}
