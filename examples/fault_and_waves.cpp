// Test-engineering workflow on a synthesized design: dump a VCD waveform of
// a random simulation, then run a stuck-at fault campaign and report
// coverage — the flow a DFT engineer runs before trusting a test set.
//
// Usage: ./build/examples/fault_and_waves [family] [size] [vcd_path]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "data/generators.hpp"
#include "sim/fault.hpp"
#include "sim/vcd.hpp"
#include "synth/synthesize.hpp"

using namespace moss;

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "ctrl_fsm";
  const int size = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string vcd_path =
      argc > 3 ? argv[3] : "/tmp/moss_" + family + ".vcd";

  const auto& lib = cell::standard_library();
  data::DesignSpec spec{family, size, 77, family + "_dft"};
  const auto nl = synth::synthesize(data::generate(spec), lib);
  std::printf("Design %s: %zu cells, %zu PIs, %zu POs\n\n",
              nl.name().c_str(), nl.num_cells(), nl.inputs().size(),
              nl.outputs().size());

  // 1. Waveform dump of 64 random cycles.
  {
    std::ofstream out(vcd_path);
    sim::VcdWriter vcd(out, nl);
    vcd.add_ports();
    sim::Simulator s(nl);
    Rng rng(1);
    std::vector<std::uint8_t> pis(nl.inputs().size());
    for (int c = 0; c < 64; ++c) {
      for (std::size_t i = 0; i < pis.size(); ++i) {
        const std::string& n = nl.node(nl.inputs()[i]).name;
        pis[i] = (n == "rst" && c < 2) ? 1 : (rng.bernoulli(0.5) ? 1 : 0);
      }
      s.step(pis);
      vcd.sample(s);
    }
    vcd.finish();
    std::printf("Wrote %s (open with gtkwave)\n\n", vcd_path.c_str());
  }

  // 2. Stuck-at fault campaign under growing pattern budgets.
  const auto faults = sim::enumerate_faults(nl);
  std::printf("Fault universe: %zu stuck-at faults\n", faults.size());
  std::printf("%-10s %-10s %-10s\n", "patterns", "detected", "coverage");
  for (const std::uint64_t cycles : {8u, 32u, 128u, 512u}) {
    Rng rng(2);
    const auto campaign = sim::simulate_faults(nl, faults, cycles, rng);
    std::printf("%-10llu %-10zu %-9.1f%%\n",
                static_cast<unsigned long long>(cycles), campaign.detected,
                100 * campaign.coverage);
  }

  // 3. The hardest faults (undetected at the largest budget).
  Rng rng(2);
  const auto campaign = sim::simulate_faults(nl, faults, 512, rng);
  std::printf("\nUndetected faults (potentially redundant logic):\n");
  int shown = 0;
  for (const auto& r : campaign.results) {
    if (r.detected) continue;
    std::printf("  %s stuck-at-%d\n",
                nl.node(r.fault.node).name.c_str(),
                r.fault.stuck_value ? 1 : 0);
    if (++shown >= 10) {
      std::printf("  ...\n");
      break;
    }
  }
  if (shown == 0) std::printf("  none — fully testable under this stimulus\n");
  return 0;
}
