// moss_serve — batched inference server for MOSS models.
//
//   moss_serve <design>... [--ckpt FILE] [--cache-mb N] [--max-batch N]
//              [--max-delay-ms N] [--threads N] [--socket PATH]
//              [--cache-dir DIR] [--shard-name NAME] [--mmap]
//              [--no-fused-batching]
//
// Boots a warm MossSession (loaded from a `moss_cli train --save`
// checkpoint when --ckpt is given — pass the same design list so the
// encoder fine-tuning reproduces the training-time geometry — otherwise a
// small model is trained in-process), registers the designs as the
// FEP-rank pool, and then speaks the line protocol of serve/protocol.hpp
// over stdin/stdout or, with --socket, over a Unix stream socket (one
// client at a time; QUIT ends the connection, Ctrl-C ends the server).
//
// With --cache-dir the embedding cache is persistent: loaded from MOSSSEG1
// segment files at boot (a respawned shard starts warm) and flushed back
// on SIGTERM/SIGINT or the FLUSH command. Signals shut the server down
// cleanly — drain in-flight requests, persist the cache, exit 0 — which is
// how the moss_cluster supervisor tells an operator stop (no respawn) from
// a crash (respawn).
//
// Example session:
//   $ moss_serve alu:2 crc:2 fifo_ctrl:2
//   ATP alu:2
//   OK ATP n=8 412.0 398.5 ...
//   RANK crc:2
//   OK RANK pool=3 top=crc_pool score=1.8123 ...
//   METRICS
//   OK METRICS
//   ...
//   QUIT
//
// Serving metrics are dumped to stderr on exit.

#include <cerrno>
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "moss.hpp"

using namespace moss;

namespace {

struct Options {
  std::vector<std::string> designs;
  std::string ckpt;
  std::string socket_path;
  std::string cache_dir;   ///< persistent MOSSSEG1 cache; "" = memory only
  std::string shard_name;  ///< identity echoed in HEALTH lines
  std::size_t cache_mb = 64;
  std::size_t max_batch = 8;
  int max_delay_ms = 2;
  std::size_t threads = 0;
  int max_retries = 2;          ///< retries after the first attempt
  double shed_threshold = 0.75; ///< queue fraction; >=1 disables shedding
  bool allow_stale = false;
  bool use_mmap = false;  ///< mmap MOSSSEG1 cache segments instead of reading
  bool no_fused = false;  ///< disable cross-request fused batching
};

void usage() {
  std::fputs(
      "usage: moss_serve <design>... [--ckpt FILE] [--cache-mb N]\n"
      "       [--max-batch N] [--max-delay-ms N] [--threads N]\n"
      "       [--socket PATH] [--max-retries N] [--shed-threshold F]\n"
      "       [--allow-stale] [--cache-dir DIR] [--shard-name NAME]\n"
      "       [--mmap] [--no-fused-batching]\n"
      "<design> = verilog file (*.v) or family:size (e.g. alu:2)\n"
      "--mmap maps MOSSSEG1 cache segments read-only at load instead of\n"
      "reading them whole; --no-fused-batching dispatches every request\n"
      "through the sequential per-request path.\n",
      stderr);
}

// SIGTERM/SIGINT request a clean shutdown: drain, persist the cache, exit
// 0. Installed WITHOUT SA_RESTART so blocking accept()/read() return EINTR
// and the serving loops notice the flag instead of blocking forever.
volatile std::sig_atomic_t g_shutdown = 0;

void on_terminate(int) { g_shutdown = 1; }

void install_shutdown_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_terminate;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Must mirror `moss_cli train` exactly (model shape, encoder config,
/// fine-tune budget, spec naming), so checkpoints saved there load here
/// with identical parameter shapes and encoder geometry.
core::WorkflowConfig cli_compatible_config() {
  core::WorkflowConfig cfg;
  cfg.model.hidden = 16;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 400;
  cfg.encoder = {2048, 16, 9};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 20000;
  cfg.pretrain.epochs = 6;
  cfg.align.epochs = 6;
  return cfg;
}

data::DesignSpec spec_for(const std::string& token, std::size_t index) {
  const auto colon = token.find(':');
  data::DesignSpec spec;
  spec.family = colon == std::string::npos ? token : token.substr(0, colon);
  spec.size_hint =
      colon == std::string::npos ? 2 : std::atoi(token.c_str() + colon + 1);
  spec.seed = 1;
  spec.name = spec.family + "_cli" + std::to_string(index);
  return spec;
}

std::shared_ptr<const data::LabeledCircuit> load_token(
    const std::string& token, std::size_t index,
    const data::DatasetConfig& dcfg) {
  if (token.size() > 2 && token.substr(token.size() - 2) == ".v") {
    std::FILE* f = std::fopen(token.c_str(), "rb");
    if (f == nullptr) return nullptr;
    std::string src;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) src.append(buf, n);
    std::fclose(f);
    return std::make_shared<data::LabeledCircuit>(data::label_module(
        rtl::parse_verilog(src), cell::standard_library(), dcfg));
  }
  return std::make_shared<data::LabeledCircuit>(data::label_circuit(
      spec_for(token, index), cell::standard_library(), dcfg));
}

/// Write all of `data`, retrying short writes and EINTR. Returns false when
/// the client is gone (EPIPE/ECONNRESET) or on any other write error.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;  // signal during write: retry
      if (errno != EPIPE && errno != ECONNRESET) std::perror("write");
      return false;  // client hung up (or unrecoverable error): drop it
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Serve one Unix-socket client with its own protocol handler. The line
/// buffer is bounded by ProtocolConfig::max_line_bytes: a client streaming
/// an endless line gets a typed "ERR bad_request" and the excess is
/// discarded instead of buffered — the server's memory no longer belongs
/// to its least honest client.
void serve_connection(int fd, serve::InferenceEngine& engine,
                      const serve::ProtocolConfig& pcfg) {
  serve::ProtocolHandler handler(engine, pcfg);
  const std::size_t cap = std::max<std::size_t>(16, pcfg.max_line_bytes);
  std::string pending;
  char buf[4096];
  bool quit = false;
  bool discarding = false;  // inside an oversize line, dropping to newline
  while (!quit) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      if (g_shutdown) break;
      continue;
    }
    if (n <= 0) break;  // EOF or read error: client gone
    pending.append(buf, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t nl = pending.find('\n');
      if (nl == std::string::npos) {
        pending.clear();
        continue;
      }
      pending.erase(0, nl + 1);
      discarding = false;
    }
    std::size_t nl;
    while (!quit && (nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line.empty()) continue;
      if (!write_all(fd, handler.handle_line(line, &quit) + "\n")) {
        quit = true;
      }
    }
    if (!quit && pending.size() > cap) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "ERR bad_request line exceeds %zu byte limit\n", cap);
      if (!write_all(fd, msg)) break;
      pending.clear();
      discarding = true;
    }
  }
  close(fd);
}

int run_socket_server(const std::string& path, serve::InferenceEngine& engine,
                      const serve::ProtocolConfig& pcfg) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 8) != 0) {
    std::perror("bind/listen");
    close(fd);
    return 2;
  }
  std::fprintf(stderr, "moss_serve: listening on %s\n", path.c_str());
  while (!g_shutdown) {
    const int client = accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // re-check g_shutdown, else re-accept
      break;
    }
    serve_connection(client, engine, pcfg);
  }
  close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--ckpt") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.ckpt = v;
    } else if (a == "--socket") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.socket_path = v;
    } else if (a == "--cache-mb") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.cache_mb = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--max-batch") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.max_batch = static_cast<std::size_t>(std::max(1, std::atoi(v)));
    } else if (a == "--max-delay-ms") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.max_delay_ms = std::max(0, std::atoi(v));
    } else if (a == "--threads") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.threads = static_cast<std::size_t>(std::max(0, std::atoi(v)));
    } else if (a == "--max-retries") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.max_retries = std::max(0, std::atoi(v));
    } else if (a == "--shed-threshold") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.shed_threshold = std::atof(v);
    } else if (a == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.cache_dir = v;
    } else if (a == "--shard-name") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.shard_name = v;
    } else if (a == "--allow-stale") {
      opt.allow_stale = true;
    } else if (a == "--mmap") {
      opt.use_mmap = true;
    } else if (a == "--no-fused-batching") {
      opt.no_fused = true;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
      return 2;
    } else {
      opt.designs.push_back(a);
    }
  }
  if (opt.designs.empty()) {
    usage();
    return 2;
  }
  // A client that disconnects mid-response must not kill the server with
  // SIGPIPE; write() returns EPIPE instead, which write_all() handles.
  std::signal(SIGPIPE, SIG_IGN);
  install_shutdown_handlers();

  try {
    const core::WorkflowConfig cfg = cli_compatible_config();

    // Label the pool designs (they double as the encoder corpus).
    // Mirror `moss_cli train` circuit ordering exactly: .v modules in CLI
    // order first, then generated specs numbered by generated-only index —
    // the fine-tune corpus must match for checkpoint shapes to reproduce.
    std::vector<std::shared_ptr<const data::LabeledCircuit>> vmods, gens;
    std::vector<std::string> vtokens, gtokens;
    std::size_t gen_index = 0;
    for (const std::string& token : opt.designs) {
      const bool is_file =
          token.size() > 2 && token.substr(token.size() - 2) == ".v";
      auto lc = load_token(token, is_file ? 0 : gen_index, cfg.dataset);
      if (!lc) {
        std::fprintf(stderr, "cannot load design %s\n", token.c_str());
        return 2;
      }
      if (is_file) {
        vmods.push_back(std::move(lc));
        vtokens.push_back(token);
      } else {
        ++gen_index;
        gens.push_back(std::move(lc));
        gtokens.push_back(token);
      }
    }
    std::vector<std::shared_ptr<const data::LabeledCircuit>> circuits = vmods;
    circuits.insert(circuits.end(), gens.begin(), gens.end());
    std::vector<std::string> tokens = vtokens;
    tokens.insert(tokens.end(), gtokens.begin(), gtokens.end());

    serve::ModelRegistry registry;
    std::shared_ptr<const serve::MossSession> session;
    std::unique_ptr<core::MossWorkflow> trained;  // self-train mode owner
    if (!opt.ckpt.empty()) {
      std::vector<std::string> corpus;
      for (const auto& lc : circuits) corpus.push_back(lc->module_text);
      session = serve::MossSession::load(cfg, corpus, opt.ckpt);
      std::fprintf(stderr, "moss_serve: loaded %s\n", opt.ckpt.c_str());
    } else {
      std::fprintf(stderr,
                   "moss_serve: no --ckpt, training a small model on %zu "
                   "design(s)...\n",
                   circuits.size());
      trained = std::make_unique<core::MossWorkflow>(cfg);
      for (const auto& lc : circuits) trained->add_circuit(*lc);
      trained->fit();
      session = serve::MossSession::adopt(trained->model(),
                                          trained->encoder());
    }
    registry.install("default", session);

    serve::EmbeddingCache cache(opt.cache_mb << 20);
    serve::EngineConfig ecfg;
    ecfg.max_batch = opt.max_batch;
    ecfg.max_delay_ms = opt.max_delay_ms;
    ecfg.threads = opt.threads;
    ecfg.admission.enabled = opt.shed_threshold < 1.0;
    ecfg.admission.shed_queue_fraction = opt.shed_threshold;
    ecfg.allow_stale = opt.allow_stale;
    ecfg.fused_batching = !opt.no_fused;
    serve::InferenceEngine engine(registry, &cache, ecfg);

    // Persistent cache: warm-start from the previous generation's MOSSSEG1
    // segments. Keys are fingerprint-derived, so entries only hit when the
    // reloaded checkpoint is bit-identical to the one that wrote them;
    // corrupt or mismatched segments cost only themselves (cold keys).
    if (!opt.cache_dir.empty()) {
      const cluster::LoadReport lr =
          cluster::load_cache(opt.cache_dir, cache, session->fingerprint(),
                              opt.use_mmap);
      std::fprintf(stderr,
                   "moss_serve: cache warm-start from %s: segments=%zu "
                   "entries=%zu rejected=%zu\n",
                   opt.cache_dir.c_str(), lr.segments_loaded, lr.entries,
                   lr.segments_rejected);
      if (!lr.first_error.empty()) {
        std::fprintf(stderr, "moss_serve: (cold fallback) %s\n",
                     lr.first_error.c_str());
      }
    }

    // The command-line designs form the FEP-rank pool.
    std::vector<std::shared_ptr<const core::CircuitBatch>> pool;
    for (const auto& lc : circuits) {
      pool.push_back(
          std::make_shared<core::CircuitBatch>(session->build(*lc)));
    }
    engine.register_pool("pool", pool);

    serve::ProtocolConfig pcfg;
    pcfg.retry.max_attempts = 1 + opt.max_retries;
    pcfg.retry_budget = std::make_shared<serve::RetryBudget>();
    const data::DatasetConfig dcfg = cfg.dataset;
    std::size_t dynamic_index = gen_index;
    // Tokens already labeled at boot resolve to the boot circuits; new
    // tokens are labeled on demand.
    auto boot = std::make_shared<
        std::unordered_map<std::string,
                           std::shared_ptr<const data::LabeledCircuit>>>();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      (*boot)[tokens[i]] = circuits[i];
    }
    pcfg.load_design =
        [boot, dcfg, &dynamic_index](const std::string& token)
        -> std::shared_ptr<const data::LabeledCircuit> {
      const auto it = boot->find(token);
      if (it != boot->end()) return it->second;
      return load_token(token, dynamic_index++, dcfg);
    };
    pcfg.shard_name = opt.shard_name;
    if (!opt.cache_dir.empty()) {
      const std::string dir = opt.cache_dir;
      serve::EmbeddingCache* cache_ptr = &cache;
      const std::uint64_t fp = session->fingerprint();
      pcfg.flush = [dir, cache_ptr, fp]() -> std::string {
        const cluster::SaveReport sr = cluster::save_cache(dir, *cache_ptr, fp);
        char buf[96];
        std::snprintf(buf, sizeof(buf), "segments=%zu entries=%zu",
                      sr.segments, sr.entries);
        return buf;
      };
    }

    int rc = 0;
    if (!opt.socket_path.empty()) {
      rc = run_socket_server(opt.socket_path, engine, pcfg);
    } else {
      serve::ProtocolHandler handler(engine, pcfg);
      const std::size_t handled = handler.run(std::cin, std::cout);
      std::fprintf(stderr, "moss_serve: handled %zu request(s)\n", handled);
    }

    // Clean shutdown: drain in-flight batches, persist the cache, exit 0.
    // The moss_cluster supervisor treats exit 0 as operator intent (no
    // respawn); anything else — including SIGKILL, which never gets here —
    // is a crash and respawns.
    engine.stop();
    if (!opt.cache_dir.empty()) {
      const cluster::SaveReport sr =
          cluster::save_cache(opt.cache_dir, cache, session->fingerprint());
      std::fprintf(stderr,
                   "moss_serve: cache flushed to %s: segments=%zu "
                   "entries=%zu\n",
                   opt.cache_dir.c_str(), sr.segments, sr.entries);
    }
    std::fputs(engine.metrics_text().c_str(), stderr);
    if (g_shutdown) {
      std::fprintf(stderr, "moss_serve: clean shutdown (signal)\n");
      return 0;
    }
    return rc;
  } catch (const ContextError& e) {
    std::fprintf(stderr, "checkpoint error: %s\n", e.what());
    return 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
