// Quickstart: the whole MOSS pipeline on one small design.
//
//   RTL text -> parse -> synthesize -> label (sim/STA/power)
//            -> LM-enhanced graph -> train MOSS briefly -> predict.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "rtl/parser.hpp"
#include "rtl/prompts.hpp"

using namespace moss;

int main() {
  // 1. RTL: a small accumulating filter, as a user would write it.
  const char* src = R"(
    module smooth (
      input clk,
      input rst,
      input en,
      input [7:0] sample,
      output [9:0] acc_o,
      output [7:0] avg_o
    );
      wire [9:0] ext;
      reg [9:0] acc;
      reg [7:0] last;
      assign ext = {2'd0, sample};
      always @(posedge clk) begin
        if (rst) acc <= 10'd0;
        else if (en) acc <= acc - {2'd0, last} + ext;
        if (rst) last <= 8'd0;
        else if (en) last <= sample;
      end
      assign acc_o = acc;
      assign avg_o = acc[9:2];
    endmodule
  )";
  rtl::Module module = rtl::parse_verilog(src);
  std::printf("Parsed module '%s': %zu inputs, %zu registers (%d state "
              "bits)\n",
              module.name.c_str(), module.inputs.size(), module.regs.size(),
              module.total_reg_bits());
  for (const auto& p : rtl::register_prompts(module)) {
    std::printf("  register prompt: %s\n", p.text.c_str());
  }

  // 2. Synthesize + label through the in-repo EDA flow (DC / VCS /
  // PrimePower stand-ins): simulation-based toggle rates, STA arrival
  // times, power report.
  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 2000;
  data::LabeledCircuit lc = data::label_module(std::move(module), lib, dcfg);
  const auto st = netlist::stats(lc.netlist);
  std::printf("Synthesized: %zu cells (%zu flops, %zu combinational), %d "
              "logic levels\n",
              st.cells, st.flops, st.comb, st.levels);
  std::printf("Ground truth: power %.1f uW, worst flop arrival %.0f ps\n",
              lc.power_uw,
              *std::max_element(lc.flop_arrival.begin(),
                                lc.flop_arrival.end()));

  // 3. LM features + MOSS model; fit this one circuit briefly.
  lm::TextEncoder enc({4096, 24, 7});
  core::MossConfig cfg;
  cfg.hidden = 24;
  cfg.rounds = 2;
  core::MossModel model(cfg, lib, enc);
  std::vector<core::CircuitBatch> data{
      core::build_batch(lc, enc, cfg.features)};
  core::PretrainConfig pcfg;
  pcfg.epochs = 150;
  pcfg.lr = 3e-3f;
  const auto rep = core::pretrain(model, data, pcfg);
  std::printf("Trained %d epochs: loss %.4f -> %.4f\n", pcfg.epochs,
              rep.total.front(), rep.total.back());

  // 4. Predict and compare.
  const auto acc = core::evaluate_tasks(model, data[0], lc);
  std::printf("Prediction accuracy (1 - mean relative error):\n");
  std::printf("  arrival time (per DFF): %.1f%%\n", 100 * acc.atp);
  std::printf("  toggle rate (per cell): %.1f%%\n", 100 * acc.trp);
  std::printf("  power (circuit):        %.1f%%\n", 100 * acc.pp);

  // Show a few per-flop arrival predictions.
  const auto h = model.node_embeddings(data[0]);
  const auto at = model.predict_arrival(data[0], h, data[0].flop_rows);
  std::printf("\n%-14s %-12s %-12s\n", "DFF", "true ps", "predicted ps");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(6, data[0].flop_rows.size()); ++i) {
    const auto id =
        static_cast<netlist::NodeId>(data[0].flop_rows[i]);
    std::printf("%-14s %-12.0f %-12.0f\n",
                lc.netlist.node(id).name.c_str(), lc.flop_arrival[i],
                at.at(i, 0) * core::kArrivalScale);
  }
  return 0;
}
