// Equivalence search: given an RTL description, find its netlist among a
// pool of candidates — the paper's functional-equivalence-prediction task
// as an interactive tool. Trains a small MOSS with multimodal alignment,
// then ranks candidates by RNC cosine + RNM matching score, and verifies
// the winner with the golden co-simulation checker.

#include <algorithm>
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "sim/equivalence.hpp"

using namespace moss;

int main() {
  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 800;

  // Training corpus and a held-out candidate pool (one per family).
  std::printf("Building corpus...\n");
  const auto train_lcs =
      data::build_dataset(data::corpus_specs(24, 7, 1, 3), lib, dcfg);
  std::vector<data::DesignSpec> pool_specs;
  for (const auto& fam : data::families()) {
    pool_specs.push_back(data::DesignSpec{fam, 2, 0xBEEF, fam + "_pool"});
  }
  const auto pool_lcs = data::build_dataset(pool_specs, lib, dcfg);

  // Fine-tune the text encoder on the corpus RTL.
  lm::TextEncoder enc({4096, 24, 7});
  {
    std::vector<std::string> corpus;
    for (const auto& lc : train_lcs) corpus.push_back(lc.module_text);
    lm::FineTuneConfig ftc;
    ftc.epochs = 2;
    ftc.max_pairs_per_epoch = 40000;
    Rng rng(5);
    lm::fine_tune(enc, corpus, ftc, rng);
  }

  // Train MOSS with alignment.
  core::MossConfig cfg;
  cfg.hidden = 24;
  cfg.rounds = 2;
  core::MossModel model(cfg, lib, enc);
  std::vector<core::CircuitBatch> train_b, pool_b;
  for (const auto& lc : train_lcs) {
    train_b.push_back(core::build_batch(lc, enc, cfg.features));
  }
  for (const auto& lc : pool_lcs) {
    pool_b.push_back(core::build_batch(lc, enc, cfg.features));
  }
  core::PretrainConfig pcfg;
  pcfg.epochs = 10;
  pcfg.lr = 2e-3f;
  core::pretrain(model, train_b, pcfg);
  core::AlignConfig acfg;
  acfg.epochs = 45;
  acfg.lr = 2e-3f;
  Rng arng(6);
  std::printf("Training alignment...\n");
  core::align(model, train_b, acfg, arng);

  // Query: the RTL of pool circuit #5, searched against all netlists.
  const std::size_t query = 5;
  std::printf("\nQuery RTL: '%s'\n", pool_lcs[query].netlist.name().c_str());
  const auto r_e = model.rtl_embedding(pool_b[query].module_text);
  struct Hit {
    std::size_t index;
    float score;
  };
  std::vector<Hit> hits;
  for (std::size_t j = 0; j < pool_b.size(); ++j) {
    const auto h = model.node_embeddings(pool_b[j]);
    const auto n_e = model.netlist_embedding(pool_b[j], h);
    hits.push_back(Hit{j, model.pair_score(r_e, n_e)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.score > b.score; });

  std::printf("\n%-5s %-24s %-10s\n", "rank", "netlist", "score");
  for (std::size_t r = 0; r < std::min<std::size_t>(5, hits.size()); ++r) {
    std::printf("%-5zu %-24s %-10.3f %s\n", r + 1,
                pool_lcs[hits[r].index].netlist.name().c_str(),
                hits[r].score, hits[r].index == query ? "<- true match" : "");
  }

  // Confirm the top hit with the golden equivalence checker.
  const std::size_t top = hits[0].index;
  Rng vrng(99);
  const auto res = sim::check_equivalence(pool_lcs[query].module,
                                          pool_lcs[top].netlist, 300, vrng);
  std::printf("\nGolden co-simulation of top hit: %s (%llu cycles)\n",
              res.equivalent ? "EQUIVALENT" : "NOT equivalent",
              static_cast<unsigned long long>(res.cycles_checked));
  std::printf("Whole-pool retrieval accuracy: %.1f%%\n",
              100 * core::evaluate_fep(model, pool_b));
  return 0;
}
