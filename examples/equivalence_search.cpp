// Equivalence search: given an RTL description, find its netlist among a
// pool of candidates — the paper's functional-equivalence-prediction task
// as an interactive tool. Trains a small MOSS with multimodal alignment,
// serves it through the moss::serve inference engine (the candidates are a
// registered FEP-rank pool, so repeated queries hit the embedding cache),
// and verifies the winner with the golden co-simulation checker.
//
// With --exact [K], the learned top-K is additionally routed through the
// miter-based SAT oracle (moss::sat), which PROVES each candidate
// equivalent or inequivalent and reports where the learned ranking and the
// proofs disagree — co-simulation can only ever say "no mismatch found".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "sat/oracle.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "sim/equivalence.hpp"

using namespace moss;

int main(int argc, char** argv) {
  bool exact = false;
  std::size_t exact_k = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exact") == 0) {
      exact = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        exact_k = static_cast<std::size_t>(
            std::max(1, std::atoi(argv[++i])));
      }
    }
  }
  const auto& lib = cell::standard_library();
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 800;

  // Training corpus and a held-out candidate pool (one per family).
  std::printf("Building corpus...\n");
  const auto train_lcs =
      data::build_dataset(data::corpus_specs(24, 7, 1, 3), lib, dcfg);
  std::vector<data::DesignSpec> pool_specs;
  for (const auto& fam : data::families()) {
    pool_specs.push_back(data::DesignSpec{fam, 2, 0xBEEF, fam + "_pool"});
  }
  const auto pool_lcs = data::build_dataset(pool_specs, lib, dcfg);

  // Fine-tune the text encoder on the corpus RTL.
  lm::TextEncoder enc({4096, 24, 7});
  {
    std::vector<std::string> corpus;
    for (const auto& lc : train_lcs) corpus.push_back(lc.module_text);
    lm::FineTuneConfig ftc;
    ftc.epochs = 2;
    ftc.max_pairs_per_epoch = 40000;
    Rng rng(5);
    lm::fine_tune(enc, corpus, ftc, rng);
  }

  // Train MOSS with alignment.
  core::MossConfig cfg;
  cfg.hidden = 24;
  cfg.rounds = 2;
  core::MossModel model(cfg, lib, enc);
  std::vector<core::CircuitBatch> train_b, pool_b;
  for (const auto& lc : train_lcs) {
    train_b.push_back(core::build_batch(lc, enc, cfg.features));
  }
  for (const auto& lc : pool_lcs) {
    pool_b.push_back(core::build_batch(lc, enc, cfg.features));
  }
  core::PretrainConfig pcfg;
  pcfg.epochs = 10;
  pcfg.lr = 2e-3f;
  core::pretrain(model, train_b, pcfg);
  core::AlignConfig acfg;
  acfg.epochs = 45;
  acfg.lr = 2e-3f;
  Rng arng(6);
  std::printf("Training alignment...\n");
  core::align(model, train_b, acfg, arng);

  // Serve retrieval through the inference engine: adopt the freshly
  // trained model into a session, register the candidates as a rank pool,
  // and issue RANK requests. The first query embeds every pool member; the
  // embedding cache makes every later query a pure lookup.
  serve::ModelRegistry registry;
  const auto session = serve::MossSession::adopt(model, enc);
  registry.install("default", session);
  serve::EmbeddingCache cache(32ull << 20);
  serve::InferenceEngine engine(registry, &cache);
  {
    std::vector<std::shared_ptr<const core::CircuitBatch>> members;
    for (const auto& b : pool_b) {
      members.push_back(std::make_shared<core::CircuitBatch>(b));
    }
    engine.register_pool("candidates", members);
  }

  // Query: the RTL of pool circuit #5, searched against all netlists.
  const std::size_t query = 5;
  std::printf("\nQuery RTL: '%s'\n", pool_lcs[query].netlist.name().c_str());
  serve::Request req;
  req.kind = serve::RequestKind::kFepRank;
  req.rtl_text = pool_b[query].module_text;
  req.pool = "candidates";
  const serve::Response resp = engine.call(req);

  std::printf("\n%-5s %-24s %-10s\n", "rank", "netlist", "score");
  const auto& hits = resp.ranking;
  for (std::size_t r = 0; r < std::min<std::size_t>(5, hits.size()); ++r) {
    std::printf("%-5zu %-24s %-10.3f %s\n", r + 1, hits[r].name.c_str(),
                hits[r].score, hits[r].index == query ? "<- true match" : "");
  }

  // Exact mode: prove (not just score) the top-K. Each candidate netlist
  // is checked against the query RTL by the SAT oracle; the learned
  // ranking claims rank 1 is the equivalent one, so every proven verdict
  // that contradicts the ranking is a disagreement — exactly the cases
  // hard-negative mining exists to harvest.
  if (exact) {
    const sat::EquivOracle oracle;
    const std::size_t k = std::min<std::size_t>(exact_k, hits.size());
    std::size_t disagreements = 0;
    std::printf("\nexact top-%zu (SAT oracle):\n", k);
    for (std::size_t r = 0; r < k; ++r) {
      const sat::OracleResult res = oracle.check(
          pool_lcs[query].module, pool_lcs[hits[r].index].netlist);
      const bool learned_says_equiv = r == 0;
      const bool disagree =
          (res.verdict == sat::Verdict::kEquivalent && !learned_says_equiv) ||
          (res.verdict == sat::Verdict::kNotEquivalent && learned_says_equiv);
      if (disagree) ++disagreements;
      std::printf("  rank %zu %-24s score=%.3f proven=%s conflicts=%llu%s\n",
                  r + 1, hits[r].name.c_str(),
                  static_cast<double>(hits[r].score),
                  sat::to_string(res.verdict),
                  static_cast<unsigned long long>(res.stats.conflicts),
                  disagree ? "  <- disagrees with learned ranking" : "");
    }
    std::printf("learned-vs-proven disagreements: %zu/%zu\n", disagreements,
                k);
  }

  // Confirm the top hit with the golden equivalence checker.
  const std::size_t top = hits[0].index;
  Rng vrng(99);
  const auto res = sim::check_equivalence(pool_lcs[query].module,
                                          pool_lcs[top].netlist, 300, vrng);
  std::printf("\nGolden co-simulation of top hit: %s (%llu cycles)\n",
              res.equivalent ? "EQUIVALENT" : "NOT equivalent",
              static_cast<unsigned long long>(res.cycles_checked));
  const serve::Response warm = engine.call(req);
  std::printf("repeat query through warm cache: %.0f us (cold %.0f us)\n",
              warm.latency_us, resp.latency_us);
  std::printf("Whole-pool retrieval accuracy: %.1f%%\n",
              100 * core::evaluate_fep(model, pool_b));
  return 0;
}
